"""The compile-as-a-service daemon (docs/service.md).

A stdlib-``asyncio`` TCP server speaking the newline-delimited JSON
protocol of :mod:`repro.service.protocol`.  Design:

* **Batching** — clients pipeline requests (or send JSON arrays);
  every request is dispatched concurrently and its response streamed
  back the moment it finishes, tagged with the request ``id``.
* **Worker pool, sharded cache** — work requests route to a pool of
  worker subprocesses (:mod:`repro.service.worker`) by
  ``shard_of(content_key)``: the same key always lands on the same
  worker, so each worker's process-wide
  :class:`~repro.pipeline.CompileCache` is one disjoint shard of the
  key space and stays warm for the daemon's lifetime.
* **In-flight deduplication** — while a work request is running, any
  identical request (same :func:`~repro.service.protocol.request_key`)
  awaits the same future: one compile, N waiters, each answered with
  its own ``id`` and ``"dedup": true``.
* **Robustness first** — a request's ``timeout_ms`` elapsing returns a
  typed ``timeout`` error (the work keeps running; later identical
  requests reuse it); a worker crash fails its in-flight requests with
  a typed ``worker-crash`` error and the worker is respawned for the
  next request, so a batch never hangs; malformed JSON gets a typed
  ``bad-request`` response without dropping the connection; SIGTERM
  drains gracefully (stop accepting, finish in-flight, stop workers,
  exit 0).

``workers=0`` runs requests in-process on a thread (no subprocesses) —
the mode unit tests and single-user embeddings use; ``workers>=1`` is
the service proper.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from typing import Any, Dict, List, Optional, Set

from . import protocol
from . import worker as worker_mod
from .protocol import error_response, ok_response

#: asyncio stream high-water mark: one request line must fit
_STREAM_LIMIT = 16 * 1024 * 1024


class _WorkError(Exception):
    """Internal: a work request failed with a typed error."""

    def __init__(self, err_type: str, message: str) -> None:
        super().__init__(message)
        self.err_type = err_type


class DaemonStats:
    """Daemon-side counters (the ``stats`` op reports them)."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.connections = 0
        self.requests = 0
        self.responses = 0
        self.deduped = 0
        self.errors = 0
        self.timeouts = 0
        self.worker_restarts = 0
        self.by_op: Dict[str, int] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "uptime_s": time.monotonic() - self.started,
            "connections": self.connections,
            "requests": self.requests,
            "responses": self.responses,
            "deduped": self.deduped,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "worker_restarts": self.worker_restarts,
            "by_op": dict(self.by_op),
        }


def _worker_env() -> Dict[str, str]:
    """The worker subprocess environment: inherit, but make sure the
    package is importable even when repro is run from a source tree."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else src_dir + os.pathsep + existing)
    return env


class WorkerHandle:
    """Daemon-side handle of one worker subprocess."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.alive = False
        self.requests = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-c",
            "from repro.service.worker import main; "
            "raise SystemExit(main())",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            limit=_STREAM_LIMIT,
            env=_worker_env(),
        )
        self.alive = True
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                break
            try:
                resp = protocol.decode_line(line)
            except protocol.ProtocolError:
                continue  # a worker writing garbage is treated as noise
            fut = self._pending.pop(resp.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(resp)
        # EOF: the worker died (or exited).  Fail everything in flight
        # with a typed error so no batch ever hangs on a dead worker.
        self.alive = False
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(_WorkError(
                    "worker-crash",
                    f"worker shard {self.shard} died mid-request"))

    async def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request to the worker and await its response.
        Raises :class:`_WorkError` on crash."""
        if not self.alive or self.proc is None or self.proc.stdin is None:
            raise _WorkError("worker-crash",
                             f"worker shard {self.shard} is not running")
        wid = self._next_id = self._next_id + 1
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[wid] = fut
        wire = dict(payload, id=wid)
        try:
            async with self._write_lock:
                self.proc.stdin.write(protocol.encode(wire))
                await self.proc.stdin.drain()
        except (ConnectionError, RuntimeError, BrokenPipeError):
            self._pending.pop(wid, None)
            raise _WorkError("worker-crash",
                             f"worker shard {self.shard} pipe closed")
        self.requests += 1
        return await fut

    async def stop(self, grace: float = 3.0) -> None:
        if self.proc is None:
            return
        if self.alive and self.proc.stdin is not None:
            try:
                async with self._write_lock:
                    self.proc.stdin.write(protocol.encode(
                        {"id": 0, "op": worker_mod.EXIT_OP}))
                    await self.proc.stdin.drain()
                    self.proc.stdin.close()
            except (ConnectionError, RuntimeError, BrokenPipeError):
                pass
        try:
            await asyncio.wait_for(self.proc.wait(), grace)
        except asyncio.TimeoutError:
            self.proc.kill()
            await self.proc.wait()
        if self._reader_task is not None:
            await self._reader_task
        self.alive = False


class Daemon:
    """The service: see the module docstring for the design."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, drain_grace: float = 10.0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.host = host
        self.port = port
        self.workers = workers
        self.drain_grace = drain_grace
        self.stats = DaemonStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._handles: List[WorkerHandle] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        self._work_tasks: Set[asyncio.Future] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._shutdown_requested: Optional[asyncio.Event] = None

    # ---- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool and start accepting connections."""
        for shard in range(self.workers):
            handle = WorkerHandle(shard)
            await handle.start()
            self._handles.append(handle)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_STREAM_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work (up to
        ``drain_grace`` seconds), stop the workers, close connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._work_tasks if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.drain_grace)
        for handle in self._handles:
            await handle.stop()
        for writer in list(self._writers):
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop teardown race
                pass
        conns = [t for t in self._conn_tasks if not t.done()]
        if conns:
            await asyncio.wait(conns, timeout=2.0)

    async def serve_forever(self) -> int:
        """CLI mode: start, announce, run until SIGTERM/SIGINT, drain."""
        await self.start()
        loop = asyncio.get_event_loop()
        self._shutdown_requested = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig,
                                        self._shutdown_requested.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(f"repro service listening on {self.host}:{self.port} "
              f"({self.workers} worker"
              f"{'s' if self.workers != 1 else ''}, pid {os.getpid()})",
              flush=True)
        await self._shutdown_requested.wait()
        print("repro service draining...", flush=True)
        await self.shutdown()
        print("repro service stopped", flush=True)
        return 0

    # ---- connection handling --------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # unframeable input: answer once, then give up on
                    # the stream (we cannot find the next boundary)
                    await self._write(writer, write_lock, error_response(
                        None, "bad-request", "request line too long"))
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.wait(tasks)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - teardown race
                pass

    async def _serve_line(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        try:
            obj = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            self.stats.errors += 1
            await self._write(writer, write_lock, error_response(
                None, "bad-request", str(exc)))
            return
        requests = obj if isinstance(obj, list) else [obj]
        if not requests:
            await self._write(writer, write_lock, error_response(
                None, "bad-request", "empty batch"))
            return
        aws = [self._serve_one(req, writer, write_lock)
               for req in requests]
        await asyncio.gather(*aws)

    async def _serve_one(self, obj: Any, writer: asyncio.StreamWriter,
                         write_lock: asyncio.Lock) -> None:
        t0 = time.monotonic()
        self.stats.requests += 1
        try:
            req = protocol.validate_request(obj)
        except protocol.ProtocolError as exc:
            resp = error_response(exc.request_id, "bad-request", str(exc))
        else:
            self.stats.by_op[req["op"]] = \
                self.stats.by_op.get(req["op"], 0) + 1
            resp = await self._dispatch(req)
        if not resp.get("ok"):
            self.stats.errors += 1
        resp["elapsed_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        self.stats.responses += 1
        await self._write(writer, write_lock, resp)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, resp: Dict[str, Any]) -> None:
        async with write_lock:
            try:
                writer.write(protocol.encode(resp))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; the work is done regardless

    # ---- dispatch --------------------------------------------------------
    async def _dispatch(self, req: Dict[str, Any]) -> Dict[str, Any]:
        rid, op = req["id"], req["op"]
        if op == "ping":
            return ok_response(rid, "ping", {
                "pong": True, "protocol": protocol.PROTOCOL_VERSION,
                "workers": self.workers, "draining": self._draining})
        if op == "stats":
            return ok_response(rid, "stats", await self._stats_result())
        # work ops: compile / run / campaign
        if self._draining:
            return error_response(rid, "shutdown",
                                  "daemon is draining; resubmit elsewhere")
        try:
            key = protocol.request_key(req)
        except ValueError as exc:
            return error_response(rid, "bad-request", str(exc))
        fut = self._inflight.get(key)
        dedup = fut is not None
        if dedup:
            self.stats.deduped += 1
        else:
            fut = asyncio.ensure_future(self._execute(req, key))
            self._inflight[key] = fut
            self._work_tasks.add(fut)
            fut.add_done_callback(self._work_tasks.discard)
            fut.add_done_callback(
                lambda f, k=key: self._inflight.pop(k, None))
            # every waiter may stop listening (timeouts); mark the
            # outcome retrieved so the loop never logs a stray error
            fut.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
        timeout_ms = req.get("timeout_ms")
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(fut),
                timeout_ms / 1000.0 if timeout_ms else None)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return error_response(
                rid, "timeout",
                f"no result within {timeout_ms}ms (work continues; an "
                f"identical request may reuse it)", dedup=dedup)
        except _WorkError as exc:
            return error_response(rid, exc.err_type, str(exc), dedup=dedup)
        resp = dict(outcome, id=rid, dedup=dedup)
        return resp

    async def _execute(self, req: Dict[str, Any],
                       key: str) -> Dict[str, Any]:
        """Run one deduplicated work request on its shard; returns the
        template response (no ``id``/``dedup`` — each waiter adds its
        own).  Raises :class:`_WorkError` on typed failures."""
        wire = {k: v for k, v in req.items() if k != "timeout_ms"}
        if self.workers == 0:
            resp = await asyncio.to_thread(worker_mod.handle_request, wire)
            shard = None
        else:
            from ..pipeline import shard_of

            shard = shard_of(key, self.workers)
            handle = self._handles[shard]
            if not handle.alive:
                handle = WorkerHandle(shard)
                await handle.start()
                self._handles[shard] = handle
                self.stats.worker_restarts += 1
            resp = await handle.submit(wire)
        if not resp.get("ok"):
            error = resp.get("error") or {}
            raise _WorkError(error.get("type", "internal"),
                             error.get("message", "unknown worker error"))
        template = {"ok": True, "op": req["op"], "result": resp["result"]}
        if "cached" in resp:
            template["cached"] = resp["cached"]
        if shard is not None:
            template["worker"] = shard
        return template

    # ---- stats -----------------------------------------------------------
    async def _stats_result(self) -> Dict[str, Any]:
        workers = []
        for handle in self._handles:
            entry: Dict[str, Any] = {
                "shard": handle.shard,
                "alive": handle.alive,
                "pid": handle.proc.pid if handle.proc else None,
                "requests": handle.requests,
            }
            if handle.alive:
                try:
                    resp = await handle.submit({"op": worker_mod.STATS_OP})
                    entry["cache"] = resp.get("result", {})
                except _WorkError:
                    entry["alive"] = False
            workers.append(entry)
        if self.workers == 0:
            resp = await asyncio.to_thread(
                worker_mod.handle_request, {"op": worker_mod.STATS_OP,
                                            "id": 0})
            workers.append({"shard": None, "alive": True,
                            "pid": os.getpid(),
                            "cache": resp.get("result", {})})
        payload = self.stats.to_dict()
        payload.update({
            "draining": self._draining,
            "inflight": len(self._inflight),
            "compiles": sum(w.get("cache", {}).get("misses", 0)
                            for w in workers),
            "cache_hits": sum(w.get("cache", {}).get("hits", 0)
                              for w in workers),
            "workers": workers,
        })
        return payload


class DaemonThread:
    """A daemon running on a background thread's event loop — the
    harness tests, benchmarks and notebooks embed::

        with DaemonThread(workers=0) as daemon:
            client = ServiceClient(port=daemon.port)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the same
    graceful drain as SIGTERM."""

    def __init__(self, **kwargs: Any) -> None:
        import threading

        self.daemon: Optional[Daemon] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(kwargs)),
            name="repro-service", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise self._failure
        if self.port is None:
            raise RuntimeError("service daemon failed to start in time")

    async def _main(self, kwargs: Dict[str, Any]) -> None:
        try:
            self.daemon = Daemon(**kwargs)
            self._loop = asyncio.get_event_loop()
            self._stop = asyncio.Event()
            await self.daemon.start()
            self.host, self.port = self.daemon.host, self.daemon.port
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.daemon.shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "DaemonThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_daemon(host: str = "127.0.0.1", port: int = 7457,
               workers: int = 2, drain_grace: float = 10.0) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""
    return asyncio.run(
        Daemon(host=host, port=port, workers=workers,
               drain_grace=drain_grace).serve_forever())
