"""The compile-as-a-service daemon (docs/service.md).

A stdlib-``asyncio`` TCP server speaking the newline-delimited JSON
protocol of :mod:`repro.service.protocol`.  Design:

* **Batching** — clients pipeline requests (or send JSON arrays);
  every request is dispatched concurrently and its response streamed
  back the moment it finishes, tagged with the request ``id``.
* **Worker pool, sharded cache** — work requests route to a pool of
  worker subprocesses (:mod:`repro.service.worker`) by
  ``shard_of(content_key)``: the same key always lands on the same
  worker, so each worker's process-wide
  :class:`~repro.pipeline.CompileCache` is one disjoint shard of the
  key space and stays warm for the daemon's lifetime.
* **In-flight deduplication** — while a work request is running, any
  identical request (same :func:`~repro.service.protocol.request_key`)
  awaits the same future: one compile, N waiters, each answered with
  its own ``id`` and ``"dedup": true``.
* **Robustness first** — a request's ``timeout_ms`` elapsing returns a
  typed ``timeout`` error (the work keeps running; later identical
  requests reuse it); a worker crash fails its in-flight requests with
  a typed ``worker-crash`` error and the worker is respawned for the
  next request, so a batch never hangs; malformed JSON gets a typed
  ``bad-request`` response without dropping the connection; SIGTERM
  drains gracefully (stop accepting, finish in-flight, stop workers,
  exit 0).
* **Backpressure** — ``max_queue_depth`` bounds the work queued per
  shard and ``max_inflight`` the distinct work in flight daemon-wide
  (0 = unbounded).  Past a bound, new work is **shed** with a typed
  ``overload`` error carrying a ``retry_after_ms`` hint instead of
  queueing without limit; dedup waiters are never shed (they add no
  work).  ``shed`` and ``queue_depth_peak`` are reported in ``stats``.
* **Warm restarts** — with ``cache_dir`` set, workers persist every
  successful work response to disk keyed by content key
  (:mod:`repro.service.persist`: atomic writes, versioned header,
  entries revalidated by key before reuse), so a restarted daemon
  answers previously-seen keys warm (``persisted: true``).

``workers=0`` runs requests in-process on a thread (no subprocesses) —
the mode unit tests and single-user embeddings use; ``workers>=1`` is
the service proper.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import time
from typing import Any, Dict, List, Optional, Set

from . import protocol
from . import worker as worker_mod
from .protocol import error_response, ok_response

#: asyncio stream high-water mark: one request line must fit
_STREAM_LIMIT = 16 * 1024 * 1024


class _WorkError(Exception):
    """Internal: a work request failed with a typed error."""

    def __init__(self, err_type: str, message: str) -> None:
        super().__init__(message)
        self.err_type = err_type


class DaemonStats:
    """Daemon-side counters (the ``stats`` op reports them)."""

    #: the integer counters to_dict/from_dict round-trip verbatim
    _COUNTERS = ("connections", "requests", "responses", "deduped",
                 "errors", "timeouts", "worker_restarts", "shed",
                 "queue_depth_peak")

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.connections = 0
        self.requests = 0
        self.responses = 0
        self.deduped = 0
        self.errors = 0
        self.timeouts = 0
        self.worker_restarts = 0
        #: work requests refused with a typed ``overload`` error
        self.shed = 0
        #: deepest per-shard queue ever observed at dispatch time
        self.queue_depth_peak = 0
        self.by_op: Dict[str, int] = {}

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "uptime_s": time.monotonic() - self.started}
        for name in self._COUNTERS:
            payload[name] = getattr(self, name)
        payload["by_op"] = dict(self.by_op)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DaemonStats":
        """Rebuild a stats snapshot (the inverse of :meth:`to_dict`,
        modulo clock drift on ``uptime_s``)."""
        stats = cls()
        for name in cls._COUNTERS:
            setattr(stats, name, int(payload.get(name, 0)))
        stats.by_op = dict(payload.get("by_op", {}))
        stats.started = time.monotonic() - float(payload.get("uptime_s",
                                                             0.0))
        return stats


def _worker_env(cache_dir: Optional[str] = None) -> Dict[str, str]:
    """The worker subprocess environment: inherit, but make sure the
    package is importable even when repro is run from a source tree,
    and hand down the persistent cache directory when configured."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else src_dir + os.pathsep + existing)
    if cache_dir:
        env[worker_mod.CACHE_DIR_ENV] = cache_dir
    else:
        env.pop(worker_mod.CACHE_DIR_ENV, None)
    return env


class WorkerHandle:
    """Daemon-side handle of one worker subprocess."""

    def __init__(self, shard: int, cache_dir: Optional[str] = None) -> None:
        self.shard = shard
        self.cache_dir = cache_dir
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.alive = False
        self.requests = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-c",
            "from repro.service.worker import main; "
            "raise SystemExit(main())",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            limit=_STREAM_LIMIT,
            env=_worker_env(self.cache_dir),
        )
        self.alive = True
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                break
            try:
                resp = protocol.decode_line(line)
            except protocol.ProtocolError:
                continue  # a worker writing garbage is treated as noise
            fut = self._pending.pop(resp.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(resp)
        # EOF: the worker died (or exited).  Fail everything in flight
        # with a typed error so no batch ever hangs on a dead worker.
        self.alive = False
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(_WorkError(
                    "worker-crash",
                    f"worker shard {self.shard} died mid-request"))

    async def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request to the worker and await its response.
        Raises :class:`_WorkError` on crash."""
        if not self.alive or self.proc is None or self.proc.stdin is None:
            raise _WorkError("worker-crash",
                             f"worker shard {self.shard} is not running")
        wid = self._next_id = self._next_id + 1
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[wid] = fut
        wire = dict(payload, id=wid)
        try:
            async with self._write_lock:
                self.proc.stdin.write(protocol.encode(wire))
                await self.proc.stdin.drain()
        except (ConnectionError, RuntimeError, BrokenPipeError):
            self._pending.pop(wid, None)
            raise _WorkError("worker-crash",
                             f"worker shard {self.shard} pipe closed")
        self.requests += 1
        return await fut

    async def stop(self, grace: float = 3.0) -> None:
        if self.proc is None:
            return
        if self.alive and self.proc.stdin is not None:
            try:
                async with self._write_lock:
                    self.proc.stdin.write(protocol.encode(
                        {"id": 0, "op": worker_mod.EXIT_OP}))
                    await self.proc.stdin.drain()
                    self.proc.stdin.close()
            except (ConnectionError, RuntimeError, BrokenPipeError):
                pass
        try:
            await asyncio.wait_for(self.proc.wait(), grace)
        except asyncio.TimeoutError:
            self.proc.kill()
            await self.proc.wait()
        if self._reader_task is not None:
            await self._reader_task
        self.alive = False


class Daemon:
    """The service: see the module docstring for the design."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, drain_grace: float = 10.0,
                 max_queue_depth: int = 0, max_inflight: int = 0,
                 cache_dir: Optional[str] = None,
                 retry_hint_ms: float = 50.0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_queue_depth < 0 or max_inflight < 0:
            raise ValueError("queue bounds must be >= 0 (0 = unbounded)")
        self.host = host
        self.port = port
        self.workers = workers
        self.drain_grace = drain_grace
        #: backpressure bounds (0 = unbounded, the pre-overload-safe
        #: behaviour): per-shard queued work / daemon-wide distinct
        #: in-flight work.  Past either bound new work is shed with a
        #: typed ``overload`` error carrying a retry_after_ms hint.
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight
        self.cache_dir = cache_dir
        self.retry_hint_ms = retry_hint_ms
        self.stats = DaemonStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._handles: List[WorkerHandle] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        self._depth: Dict[Optional[int], int] = {}
        self._work_tasks: Set[asyncio.Future] = set()
        self._serve_tasks: Set[asyncio.Task] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._shutdown_requested: Optional[asyncio.Event] = None

    # ---- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool and start accepting connections."""
        if self.workers == 0:
            # in-process mode shares the worker module's store; set it
            # up for this daemon generation (None disables — a previous
            # generation's store must not leak into this one)
            worker_mod.configure_persistence(self.cache_dir)
        for shard in range(self.workers):
            handle = WorkerHandle(shard, self.cache_dir)
            await handle.start()
            self._handles.append(handle)
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port, limit=_STREAM_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work (up to
        ``drain_grace`` seconds), stop the workers, close connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._work_tasks if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.drain_grace)
        # let the per-request serve tasks write their responses before
        # the writers close — without this, in-process (workers=0)
        # drains could finish the work yet drop the response on the
        # floor, because nothing below awaits before writer.close()
        serves = [t for t in self._serve_tasks if not t.done()]
        if serves:
            await asyncio.wait(serves, timeout=2.0)
        for handle in self._handles:
            await handle.stop()
        for writer in list(self._writers):
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop teardown race
                pass
        conns = [t for t in self._conn_tasks if not t.done()]
        if conns:
            await asyncio.wait(conns, timeout=2.0)

    async def serve_forever(self) -> int:
        """CLI mode: start, announce, run until SIGTERM/SIGINT, drain."""
        await self.start()
        loop = asyncio.get_event_loop()
        self._shutdown_requested = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig,
                                        self._shutdown_requested.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(f"repro service listening on {self.host}:{self.port} "
              f"({self.workers} worker"
              f"{'s' if self.workers != 1 else ''}, pid {os.getpid()})",
              flush=True)
        await self._shutdown_requested.wait()
        print("repro service draining...", flush=True)
        await self.shutdown()
        print("repro service stopped", flush=True)
        return 0

    # ---- connection handling --------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # unframeable input: answer once, then give up on
                    # the stream (we cannot find the next boundary)
                    await self._write(writer, write_lock, error_response(
                        None, "bad-request", "request line too long"))
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                self._serve_tasks.add(task)
                task.add_done_callback(self._serve_tasks.discard)
            if tasks:
                await asyncio.wait(tasks)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - teardown race
                pass

    async def _serve_line(self, line: bytes,
                          writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        try:
            obj = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            self.stats.errors += 1
            await self._write(writer, write_lock, error_response(
                None, "bad-request", str(exc)))
            return
        requests = obj if isinstance(obj, list) else [obj]
        if not requests:
            await self._write(writer, write_lock, error_response(
                None, "bad-request", "empty batch"))
            return
        aws = [self._serve_one(req, writer, write_lock)
               for req in requests]
        await asyncio.gather(*aws)

    async def _serve_one(self, obj: Any, writer: asyncio.StreamWriter,
                         write_lock: asyncio.Lock) -> None:
        t0 = time.monotonic()
        self.stats.requests += 1
        try:
            req = protocol.validate_request(obj)
        except protocol.ProtocolError as exc:
            resp = error_response(exc.request_id, "bad-request", str(exc))
        else:
            self.stats.by_op[req["op"]] = \
                self.stats.by_op.get(req["op"], 0) + 1
            resp = await self._dispatch(req)
        if not resp.get("ok"):
            self.stats.errors += 1
        resp["elapsed_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        self.stats.responses += 1
        await self._write(writer, write_lock, resp)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter,
                     write_lock: asyncio.Lock, resp: Dict[str, Any]) -> None:
        async with write_lock:
            try:
                writer.write(protocol.encode(resp))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; the work is done regardless

    # ---- dispatch --------------------------------------------------------
    async def _dispatch(self, req: Dict[str, Any]) -> Dict[str, Any]:
        rid, op = req["id"], req["op"]
        if op == "ping":
            return ok_response(rid, "ping", {
                "pong": True, "protocol": protocol.PROTOCOL_VERSION,
                "workers": self.workers, "draining": self._draining})
        if op == "stats":
            return ok_response(rid, "stats", await self._stats_result())
        # work ops: compile / run / campaign
        if self._draining:
            return error_response(rid, "shutdown",
                                  "daemon is draining; resubmit elsewhere")
        try:
            key = protocol.request_key(req)
        except ValueError as exc:
            return error_response(rid, "bad-request", str(exc))
        fut = self._inflight.get(key)
        dedup = fut is not None
        if dedup:
            # a waiter joining an in-flight compile adds no work, so
            # it is never shed — backpressure bounds work, not waiters
            self.stats.deduped += 1
        else:
            shard = (None if self.workers == 0
                     else self._shard_of(key))
            shed = self._overload_check(shard)
            if shed is not None:
                self.stats.shed += 1
                return error_response(
                    rid, "overload",
                    shed, retry_after_ms=self._retry_hint(shard),
                    dedup=False)
            depth = self._depth.get(shard, 0) + 1
            self._depth[shard] = depth
            self.stats.queue_depth_peak = max(
                self.stats.queue_depth_peak, depth)
            fut = asyncio.ensure_future(self._execute(req, key, shard))
            self._inflight[key] = fut
            self._work_tasks.add(fut)
            fut.add_done_callback(self._work_tasks.discard)
            fut.add_done_callback(
                lambda f, k=key: self._inflight.pop(k, None))
            fut.add_done_callback(
                lambda f, s=shard: self._depth.__setitem__(
                    s, max(0, self._depth.get(s, 1) - 1)))
            # every waiter may stop listening (timeouts); mark the
            # outcome retrieved so the loop never logs a stray error
            fut.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
        timeout_ms = req.get("timeout_ms")
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(fut),
                timeout_ms / 1000.0 if timeout_ms else None)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return error_response(
                rid, "timeout",
                f"no result within {timeout_ms}ms (work continues; an "
                f"identical request may reuse it)", dedup=dedup)
        except _WorkError as exc:
            return error_response(rid, exc.err_type, str(exc), dedup=dedup)
        resp = dict(outcome, id=rid, dedup=dedup)
        return resp

    def _shard_of(self, key: str) -> int:
        from ..pipeline import shard_of

        return shard_of(key, self.workers)

    def _overload_check(self, shard: Optional[int]) -> Optional[str]:
        """The shed reason when admitting one more work request would
        exceed a configured bound, else None (admit)."""
        if self.max_inflight and len(self._inflight) >= self.max_inflight:
            return (f"daemon at max_inflight={self.max_inflight} "
                    f"distinct work requests; retry with backoff")
        if self.max_queue_depth \
                and self._depth.get(shard, 0) >= self.max_queue_depth:
            where = ("in-process queue" if shard is None
                     else f"worker shard {shard}")
            return (f"{where} at max_queue_depth={self.max_queue_depth}; "
                    f"retry with backoff")
        return None

    def _retry_hint(self, shard: Optional[int]) -> int:
        """A deterministic retry_after_ms hint scaled by the pressure
        that caused the shed (deeper queues -> longer hints)."""
        pressure = max(len(self._inflight), self._depth.get(shard, 0))
        return int(min(5000.0, self.retry_hint_ms * (1 + pressure)))

    async def _execute(self, req: Dict[str, Any], key: str,
                       shard: Optional[int]) -> Dict[str, Any]:
        """Run one deduplicated work request on its shard; returns the
        template response (no ``id``/``dedup`` — each waiter adds its
        own).  Raises :class:`_WorkError` on typed failures."""
        wire = {k: v for k, v in req.items() if k != "timeout_ms"}
        if shard is None:
            resp = await asyncio.to_thread(worker_mod.handle_request, wire)
        else:
            handle = self._handles[shard]
            if not handle.alive:
                handle = WorkerHandle(shard, self.cache_dir)
                await handle.start()
                self._handles[shard] = handle
                self.stats.worker_restarts += 1
            resp = await handle.submit(wire)
        if not resp.get("ok"):
            error = resp.get("error") or {}
            err_type = error.get("type", "internal")
            if err_type not in protocol.ERROR_TYPES:
                # a worker speaking an unknown dialect must not crash
                # the dispatch task — downgrade to a typed internal
                err_type = "internal"
            raise _WorkError(err_type,
                             error.get("message", "unknown worker error"))
        template = {"ok": True, "op": req["op"], "result": resp["result"]}
        for meta in ("cached", "persisted"):
            if meta in resp:
                template[meta] = resp[meta]
        if shard is not None:
            template["worker"] = shard
        return template

    # ---- stats -----------------------------------------------------------
    async def _stats_result(self) -> Dict[str, Any]:
        workers = []
        for handle in self._handles:
            entry: Dict[str, Any] = {
                "shard": handle.shard,
                "alive": handle.alive,
                "pid": handle.proc.pid if handle.proc else None,
                "requests": handle.requests,
            }
            if handle.alive:
                try:
                    resp = await handle.submit({"op": worker_mod.STATS_OP})
                    entry["cache"] = resp.get("result", {})
                except _WorkError:
                    entry["alive"] = False
            workers.append(entry)
        if self.workers == 0:
            resp = await asyncio.to_thread(
                worker_mod.handle_request, {"op": worker_mod.STATS_OP,
                                            "id": 0})
            workers.append({"shard": None, "alive": True,
                            "pid": os.getpid(),
                            "cache": resp.get("result", {})})
        shards = (range(self.workers) if self.workers else (None,))
        persist = [w.get("cache", {}).get("persist") for w in workers]
        payload = self.stats.to_dict()
        payload.update({
            "draining": self._draining,
            "inflight": len(self._inflight),
            "queue_depths": [self._depth.get(s, 0) for s in shards],
            "max_queue_depth": self.max_queue_depth,
            "max_inflight": self.max_inflight,
            "compiles": sum(w.get("cache", {}).get("misses", 0)
                            for w in workers),
            "cache_hits": sum(w.get("cache", {}).get("hits", 0)
                              for w in workers),
            "persist_hits": sum(p.get("hits", 0) for p in persist if p),
            "persist_stores": sum(p.get("stores", 0)
                                  for p in persist if p),
            "workers": workers,
        })
        return payload


class DaemonThread:
    """A daemon running on a background thread's event loop — the
    harness tests, benchmarks and notebooks embed::

        with DaemonThread(workers=0) as daemon:
            client = ServiceClient(port=daemon.port)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the same
    graceful drain as SIGTERM."""

    def __init__(self, **kwargs: Any) -> None:
        import threading

        self.daemon: Optional[Daemon] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(kwargs)),
            name="repro-service", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise self._failure
        if self.port is None:
            raise RuntimeError("service daemon failed to start in time")

    async def _main(self, kwargs: Dict[str, Any]) -> None:
        try:
            self.daemon = Daemon(**kwargs)
            self._loop = asyncio.get_event_loop()
            self._stop = asyncio.Event()
            await self.daemon.start()
            self.host, self.port = self.daemon.host, self.daemon.port
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.daemon.shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "DaemonThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_daemon(host: str = "127.0.0.1", port: int = 7457,
               workers: int = 2, drain_grace: float = 10.0,
               max_queue_depth: int = 0, max_inflight: int = 0,
               cache_dir: Optional[str] = None) -> int:
    """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""
    return asyncio.run(
        Daemon(host=host, port=port, workers=workers,
               drain_grace=drain_grace, max_queue_depth=max_queue_depth,
               max_inflight=max_inflight,
               cache_dir=cache_dir).serve_forever())
