"""The service wire protocol (docs/service.md).

Newline-delimited JSON over a TCP socket: every line the client sends
is one **request object** (or a JSON array of request objects — an
explicit batch), every line the daemon sends back is one **response
object**.  Responses stream back in *completion* order and carry the
request's ``id``, so clients pipeline freely: sending N requests
without waiting *is* the batching model.

Both sides — and the documentation round-trip test, which parses every
JSON snippet in docs/service.md — validate against the schemas here.
Keep this module dependency-light: the daemon imports it before any
pipeline machinery, and a validation failure must never require a
compiler import to diagnose.

Requests
--------

Common fields: ``id`` (any JSON string/int, echoed back; required),
``op`` (required), optional ``timeout_ms`` (server-side deadline for
this request).  Per-op fields:

========== ==========================================================
``ping``     —
``stats``    —
``compile``  ``source`` (required), ``config`` (registry spec string,
             default ``"base"``), ``train`` (list of numbers, default
             ``[]``), ``fuel`` (int), ``failsafe`` (bool)
``run``      everything ``compile`` takes, plus ``ref`` (list of
             numbers, default ``[]``) and ``check`` (bool, default
             true: verify against the reference interpreter)
``campaign`` ``workloads`` (list of names or null for all),
             ``scenarios`` (list), ``seeds`` (list of ints),
             ``config`` (registry spec string or null for the
             campaign default)
========== ==========================================================

Responses
---------

``{"id": ..., "ok": true, "op": ..., "result": {...}}`` plus metadata
fields (``cached``, ``dedup``, ``worker``, ``elapsed_ms``) — or
``{"id": ..., "ok": false, "error": {"type": ..., "message": ...}}``
with ``type`` one of :data:`ERROR_TYPES`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

#: protocol revision, reported by ``ping``
PROTOCOL_VERSION = 1

#: every operation a request may carry
OPS = ("ping", "stats", "compile", "run", "campaign")

#: ops that reach the worker pool (and therefore shard + deduplicate)
WORK_OPS = ("compile", "run", "campaign")

#: the closed set of typed error codes a response may carry
ERROR_TYPES = (
    "bad-request",      # malformed JSON / schema violation
    "compile-error",    # the pipeline raised (failsafe exhausted, ...)
    "output-mismatch",  # simulated output diverged from the oracle
    "fuel-exhausted",   # program ran out of fuel
    "timeout",          # the request's timeout_ms elapsed server-side
    "worker-crash",     # the worker process died mid-request
    "overload",         # queue bound hit: shed, carries retry_after_ms
    "shutdown",         # daemon is draining and refused new work
    "internal",         # anything else (bug in the service)
)

_MAX_LINE = 64 * 1024 * 1024  # one request line; sources are small


class ProtocolError(ValueError):
    """A request (or response) violating the wire schema."""

    def __init__(self, message: str, request_id: Any = None) -> None:
        super().__init__(message)
        self.request_id = request_id


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode(obj: Any) -> bytes:
    """One wire line: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> Any:
    """Parse one wire line; :class:`ProtocolError` on malformed JSON."""
    if len(line) > _MAX_LINE:
        raise ProtocolError(f"line exceeds {_MAX_LINE} bytes")
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None


# ---------------------------------------------------------------------------
# request validation
# ---------------------------------------------------------------------------

def _require_numbers(req: Dict[str, Any], field: str) -> None:
    value = req.get(field, [])
    if not isinstance(value, list) or any(
            not isinstance(v, (int, float)) or isinstance(v, bool)
            for v in value):
        raise ProtocolError(f"{field!r} must be a list of numbers",
                            req.get("id"))


def validate_request(obj: Any) -> Dict[str, Any]:
    """Check one decoded request against the schema; returns it.

    Raises :class:`ProtocolError` (carrying the request id when one
    could be salvaged) — the daemon turns that into a ``bad-request``
    response without dropping the connection.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    rid = obj.get("id")
    if rid is None or not isinstance(rid, (str, int)):
        raise ProtocolError("'id' is required (string or int)",
                            rid if isinstance(rid, (str, int)) else None)
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})",
                            rid)
    timeout_ms = obj.get("timeout_ms")
    if timeout_ms is not None and (
            not isinstance(timeout_ms, (int, float))
            or isinstance(timeout_ms, bool) or timeout_ms <= 0):
        raise ProtocolError("'timeout_ms' must be a positive number", rid)
    if op in ("compile", "run"):
        if not isinstance(obj.get("source"), str):
            raise ProtocolError("'source' (string) is required", rid)
        if not isinstance(obj.get("config", "base"), str):
            raise ProtocolError("'config' must be a registry spec string",
                                rid)
        _require_numbers(obj, "train")
        fuel = obj.get("fuel", 50_000_000)
        if not isinstance(fuel, int) or isinstance(fuel, bool) or fuel <= 0:
            raise ProtocolError("'fuel' must be a positive int", rid)
        if not isinstance(obj.get("failsafe", True), bool):
            raise ProtocolError("'failsafe' must be a bool", rid)
    if op == "run":
        _require_numbers(obj, "ref")
        if not isinstance(obj.get("check", True), bool):
            raise ProtocolError("'check' must be a bool", rid)
    if op == "campaign":
        workloads = obj.get("workloads")
        if workloads is not None and (
                not isinstance(workloads, list)
                or any(not isinstance(w, str) for w in workloads)):
            raise ProtocolError("'workloads' must be null or a list of "
                                "names", rid)
        scenarios = obj.get("scenarios", ["poison"])
        if not isinstance(scenarios, list) or not scenarios or any(
                not isinstance(s, str) for s in scenarios):
            raise ProtocolError("'scenarios' must be a non-empty list of "
                                "names", rid)
        seeds = obj.get("seeds", [0])
        if not isinstance(seeds, list) or not seeds or any(
                not isinstance(s, int) or isinstance(s, bool)
                for s in seeds):
            raise ProtocolError("'seeds' must be a non-empty list of ints",
                                rid)
        config = obj.get("config")
        if config is not None and not isinstance(config, str):
            raise ProtocolError("'config' must be a registry spec string",
                                rid)
    return obj


def validate_response(obj: Any) -> Dict[str, Any]:
    """Check one decoded response against the schema; returns it."""
    if not isinstance(obj, dict):
        raise ProtocolError("response must be a JSON object")
    if "id" not in obj:
        raise ProtocolError("response must echo an 'id'")
    ok = obj.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError("'ok' (bool) is required")
    if ok:
        if "result" not in obj or not isinstance(obj["result"], dict):
            raise ProtocolError("ok response must carry a 'result' object")
    else:
        error = obj.get("error")
        if not isinstance(error, dict):
            raise ProtocolError("error response must carry an 'error' "
                                "object")
        if error.get("type") not in ERROR_TYPES:
            raise ProtocolError(f"error type {error.get('type')!r} not in "
                                f"{ERROR_TYPES}")
        if not isinstance(error.get("message"), str):
            raise ProtocolError("'error.message' (string) is required")
        hint = error.get("retry_after_ms")
        if hint is not None and (
                not isinstance(hint, (int, float))
                or isinstance(hint, bool) or hint < 0):
            raise ProtocolError("'error.retry_after_ms' must be a "
                                "non-negative number")
    return obj


# ---------------------------------------------------------------------------
# response construction (the daemon and worker both use these, so the
# schema cannot drift between them)
# ---------------------------------------------------------------------------

def ok_response(rid: Any, op: str, result: Dict[str, Any],
                **meta: Any) -> Dict[str, Any]:
    resp = {"id": rid, "ok": True, "op": op, "result": result}
    resp.update(meta)
    return resp


def error_response(rid: Any, err_type: str, message: str,
                   retry_after_ms: Optional[float] = None,
                   **meta: Any) -> Dict[str, Any]:
    assert err_type in ERROR_TYPES, err_type
    error: Dict[str, Any] = {"type": err_type, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    resp = {"id": rid, "ok": False, "error": error}
    resp.update(meta)
    return resp


# ---------------------------------------------------------------------------
# content keys: dedup + sharding
# ---------------------------------------------------------------------------

def request_key(req: Dict[str, Any]) -> Optional[str]:
    """The deduplication/sharding key of a validated work request.

    Two requests with the same key would do identical work, so the
    daemon coalesces them while one is in flight and routes equal keys
    to the same worker shard.  For ``compile``/``run`` the key builds
    on :func:`repro.pipeline.content_key` — the process-portable slice
    of the CompileCache key — extended with the run-only fields;
    ``campaign`` keys hash the campaign matrix.  Non-work ops
    (``ping``/``stats``) have no key (returns None).
    """
    op = req["op"]
    if op not in WORK_OPS:
        return None
    if op == "campaign":
        h = hashlib.sha256()
        h.update(repr(("campaign", req.get("workloads"),
                       tuple(req.get("scenarios", ["poison"])),
                       tuple(req.get("seeds", [0])),
                       req.get("config"))).encode())
        return h.hexdigest()
    from ..pipeline import content_key
    from .registry import resolve_config

    base = content_key(req["source"],
                       resolve_config(req.get("config", "base")),
                       req.get("train", []),
                       req.get("fuel", 50_000_000),
                       req.get("failsafe", True))
    if op == "compile":
        return base
    h = hashlib.sha256()
    h.update(base.encode())
    h.update(repr(("run", tuple(req.get("ref", [])),
                   req.get("check", True))).encode())
    return h.hexdigest()
