"""Disk persistence for the worker shard caches (docs/service.md).

A daemon restart used to lose every warm shard: the first wave of
traffic after a deploy re-compiled the whole hot key space.  With
``--cache-dir`` each worker also writes every successful work response
to disk, keyed by the request's **content key** (the process-portable
:func:`repro.pipeline.content_key` extension computed by
:func:`repro.service.protocol.request_key`), so a restarted daemon
answers warm keys from disk at its first contact.

Format: one JSON file per entry —

* ``magic`` / ``version`` — the store only ever reads its own format;
  a version bump invalidates every older entry (counted, skipped);
* ``content_key`` — the entry **revalidates by content key before
  reuse**: the stored key must equal both the filename stem and the
  key of the request being answered.  A renamed, truncated or
  hand-edited file is never trusted;
* ``op`` and the full ``response`` object (minus the request ``id``,
  which is caller-specific) — re-validated against the wire schema on
  load, so a corrupt-but-parseable file cannot leak a malformed
  response to a client.

Writes are **atomic**: write to a same-directory temp file, fsync,
``os.replace`` onto the final name — a crash mid-write leaves either
the old entry or a temp file the next scan ignores, never a torn read.
Corrupt or stale files are skipped and counted (``corrupt`` /
``stale`` in the store's stats), never deleted out from under a
concurrent reader and never fatal.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from . import protocol

#: file format magic + revision; bump VERSION to invalidate old stores
MAGIC = "repro-service-cache"
VERSION = 1


class CacheStoreError(ValueError):
    """An entry failing validation (corrupt, stale, or mismatched)."""


def validate_entry(obj: Any, key: Optional[str] = None) -> Dict[str, Any]:
    """Check one decoded entry; returns it.  ``key`` additionally pins
    the content key the caller is about to reuse the entry for."""
    if not isinstance(obj, dict):
        raise CacheStoreError("entry must be a JSON object")
    if obj.get("magic") != MAGIC:
        raise CacheStoreError(f"bad magic {obj.get('magic')!r}")
    if obj.get("version") != VERSION:
        raise CacheStoreError(f"version {obj.get('version')!r} != "
                              f"{VERSION} (stale format)")
    stored_key = obj.get("content_key")
    if not isinstance(stored_key, str) or not stored_key:
        raise CacheStoreError("entry carries no content_key")
    if key is not None and stored_key != key:
        raise CacheStoreError(f"content_key mismatch: entry is for "
                              f"{stored_key[:12]}..., wanted "
                              f"{key[:12]}...")
    if obj.get("op") not in protocol.WORK_OPS:
        raise CacheStoreError(f"unknown op {obj.get('op')!r}")
    response = obj.get("response")
    if not isinstance(response, dict) or not response.get("ok"):
        raise CacheStoreError("entry must hold an ok response")
    # the stored response must still satisfy the wire schema (it is
    # re-sent to clients verbatim, plus their own id)
    try:
        protocol.validate_response(dict(response, id=0))
    except protocol.ProtocolError as exc:
        raise CacheStoreError(f"stored response invalid: {exc}") from None
    return obj


class CacheStore:
    """One directory of persisted work responses, content-addressed."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.stale = 0
        self.write_errors = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # ---- read ------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The persisted response template for ``key`` (no ``id``), or
        None.  Never raises: unreadable/corrupt/stale entries count and
        return None — a persisted entry is a hint, not an authority."""
        path = self._path(key)
        try:
            with open(path, "r") as f:
                obj = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            return None
        try:
            entry = validate_entry(obj, key=key)
        except CacheStoreError as exc:
            if "stale format" in str(exc):
                self.stale += 1
            else:
                self.corrupt += 1
            return None
        self.hits += 1
        return dict(entry["response"])

    # ---- write -----------------------------------------------------------
    def put(self, key: str, op: str, response: Dict[str, Any]) -> bool:
        """Persist one successful response under ``key`` atomically
        (write-temp-then-rename).  Returns False (counted) on any I/O
        failure — persistence must never fail the request it rides."""
        template = {k: v for k, v in response.items() if k != "id"}
        entry = {"magic": MAGIC, "version": VERSION, "content_key": key,
                 "op": op, "response": template}
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(entry, f, separators=(",", ":"), sort_keys=True)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except OSError:
            self.write_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stores += 1
        return True

    # ---- introspection ---------------------------------------------------
    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.root)
                       if name.endswith(".json"))
        except OSError:
            return 0

    def stats(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "write_errors": self.write_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CacheStore {self.root} {len(self)} entries "
                f"hits {self.hits} misses {self.misses}>")
