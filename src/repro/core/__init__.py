"""The paper's core contribution: speculative SSAPRE.

:func:`optimize_function` runs the full SSAPRE-based optimization stack
(register promotion → expression PRE / strength reduction → LFTR → DCE)
over one function already in speculative SSA form.
"""

from dataclasses import dataclass, field
from typing import Optional

from ..ssa import SSAFunction
from .config import SpecConfig
from .dce import eliminate_dead_code
from .engine import PREContext, SSAPRE
from .epre import EPREStats, eliminate_redundant_exprs
from .lftr import replace_linear_tests
from .materialize import Materializer, run_ssapre_on_class
from .occurrences import (ExprClass, InsertedOcc, LeftOcc, Occurrence,
                          ParentLink, PhiOcc, PhiOpnd, RealOcc,
                          collect_expr_classes, leaf_versions, lexical_key)
from .register_promotion import PromotionStats, promote_loads


@dataclass
class OptStats:
    """Combined per-function optimization statistics."""

    promotion: Optional[PromotionStats] = None
    epre: Optional[EPREStats] = None
    lftr_replacements: int = 0
    dce_removed: int = 0


def optimize_function(ssa: SSAFunction, config: SpecConfig,
                      edge_profile=None) -> OptStats:
    """Run the configured SSAPRE optimizations on ``ssa`` (in place)."""
    stats = OptStats()
    ctx = PREContext(
        ssa,
        control_speculation=config.control_speculation,
        edge_profile=edge_profile if config.use_edge_profile else None,
        repair_injuries=config.strength_reduction,
        emit_checks=config.emit_checks,
    )
    if config.register_promotion:
        stats.promotion = promote_loads(
            ctx,
            max_rounds=config.max_rounds,
            store_forwarding=config.store_forwarding,
            allow_data_speculation=config.data_speculation,
        )
    if config.expression_pre:
        stats.epre = eliminate_redundant_exprs(ctx,
                                               max_rounds=config.max_rounds)
    if config.lftr:
        stats.lftr_replacements = replace_linear_tests(ctx)
    if config.dce:
        stats.dce_removed = eliminate_dead_code(ssa)
    return stats


__all__ = [
    "EPREStats", "ExprClass", "InsertedOcc", "LeftOcc", "Materializer",
    "Occurrence", "OptStats", "PREContext", "ParentLink", "PhiOcc",
    "PhiOpnd", "PromotionStats", "RealOcc", "SSAPRE", "SpecConfig",
    "collect_expr_classes", "eliminate_dead_code",
    "eliminate_redundant_exprs", "leaf_versions", "lexical_key",
    "optimize_function", "promote_loads", "replace_linear_tests",
    "run_ssapre_on_class",
]
