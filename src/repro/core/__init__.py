"""The paper's core contribution: speculative SSAPRE.

:func:`optimize_function` runs the full SSAPRE-based optimization stack
(register promotion → expression PRE / strength reduction → LFTR → DCE)
over one function already in speculative SSA form.  The stack itself is
decomposed into the typed phase registry of :mod:`repro.core.phases`;
the pipeline's pass manager wraps each phase as a registered pass and
``optimize_function`` is the sequential façade over the same phases.
"""

from dataclasses import dataclass, field
from typing import Optional

from ..ssa import SSAFunction
from .config import SpecConfig
from .dce import eliminate_dead_code
from .engine import PREContext, SSAPRE
from .epre import EPREStats, eliminate_redundant_exprs
from .lftr import replace_linear_tests
from .materialize import Materializer, run_ssapre_on_class
from .occurrences import (ExprClass, InsertedOcc, LeftOcc, Occurrence,
                          ParentLink, PhiOcc, PhiOpnd, RealOcc,
                          collect_expr_classes, leaf_versions, lexical_key)
from .phases import PHASES, PHASES_BY_NAME, Phase, make_context, phases_for
from .register_promotion import PromotionStats, promote_loads


@dataclass
class OptStats:
    """Combined per-function optimization statistics."""

    promotion: Optional[PromotionStats] = None
    epre: Optional[EPREStats] = None
    lftr_replacements: int = 0
    dce_removed: int = 0


def optimize_function(ssa: SSAFunction, config: SpecConfig,
                      edge_profile=None) -> OptStats:
    """Run the configured SSAPRE optimizations on ``ssa`` (in place).

    Sequential façade over the phase registry of
    :mod:`repro.core.phases`: every enabled phase runs in order over one
    shared :class:`PREContext`.  The pipeline's pass manager runs the
    same phases as individual instrumented passes."""
    stats = OptStats()
    ctx = make_context(ssa, config, edge_profile)
    for phase in phases_for(config):
        phase.run(ctx, config, stats)
    return stats


__all__ = [
    "EPREStats", "ExprClass", "InsertedOcc", "LeftOcc", "Materializer",
    "Occurrence", "OptStats", "PHASES", "PHASES_BY_NAME", "PREContext",
    "ParentLink", "Phase", "PhiOcc", "PhiOpnd", "PromotionStats",
    "RealOcc", "SSAPRE", "SpecConfig", "collect_expr_classes",
    "eliminate_dead_code", "eliminate_redundant_exprs", "leaf_versions",
    "lexical_key", "make_context", "optimize_function", "phases_for",
    "promote_loads", "replace_linear_tests", "run_ssapre_on_class",
]
