"""Linear-function test replacement (paper §1/§4, after Kennedy et
al. [20]).

After strength reduction turns ``i * c`` into a temporary ``t`` maintained
by repairs, the loop-exit comparison ``i < n`` can be rewritten to
``t < n*c``, letting dead-code elimination retire the original induction
variable when nothing else uses it.

Guards (all must hold, keeping the transformation conservative):

* the test is ``i <op> const`` at the header of a natural loop;
* strength reduction recorded ``(i, c, t)`` with the temp's Φ available at
  that header (so ``t == i*c`` holds whenever the test executes);
* every definition of ``i`` inside the loop is an injury (``i = i ± k``)
  or a φ — i.e. ``i`` is a genuine linear induction variable there;
* the stride ``c`` is a positive constant (comparison direction
  preserved); negative strides flip the comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import Symbol
from ..ssa import (SAssign, SBin, SCall, SCondBr, SConst, SSABlock,
                   SSAFunction, SSAVar, SVarUse)
from .engine import PREContext

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _iv_is_linear_in_loop(ssa: SSAFunction, loop, symbol: Symbol) -> bool:
    """Every def of ``symbol`` inside ``loop`` is i = i ± const or a φ."""
    for base in loop.blocks:
        block = ssa.block_of(base)
        for stmt in block.stmts:
            if isinstance(stmt, SAssign) and stmt.lhs.symbol is symbol:
                rhs = stmt.rhs
                linear = (
                    isinstance(rhs, SBin)
                    and rhs.op in ("+", "-")
                    and isinstance(rhs.left, SVarUse)
                    and rhs.left.symbol is symbol
                    and isinstance(rhs.right, SConst)
                )
                if not linear:
                    return False
            elif isinstance(stmt, SCall) and stmt.dst is not None \
                    and stmt.dst.symbol is symbol:
                return False
            for chi in stmt.chis:
                if chi.symbol is symbol:
                    return False
    return True


def _live_temp_version(header: SSABlock, temp: Symbol) -> Optional[SSAVar]:
    """The SSA version of ``temp`` live at the header's terminator: its
    φ def, updated by any later def inside the header block."""
    var: Optional[SSAVar] = None
    for phi in header.phis:
        if phi.lhs is not None and phi.lhs.symbol is temp:
            var = phi.lhs
    for stmt in header.stmts:
        if isinstance(stmt, SAssign) and isinstance(stmt.lhs, SSAVar) \
                and stmt.lhs.symbol is temp:
            var = stmt.lhs
        elif isinstance(stmt, SCall) and isinstance(stmt.dst, SSAVar) \
                and stmt.dst.symbol is temp:
            var = stmt.dst
    return var


def replace_linear_tests(ctx: PREContext) -> int:
    """Apply LFTR wherever the guards hold; returns replacements made."""
    ssa = ctx.ssa
    if not ctx.sr_records:
        return 0
    records: Dict[Symbol, Tuple[float, Symbol, Set[SSABlock]]] = {}
    for iv, stride, temp, phi_blocks in ctx.sr_records:
        if isinstance(stride, int) and stride != 0:
            records[iv] = (stride, temp, phi_blocks)
    if not records:
        return 0
    replaced = 0
    for loop in ctx.loops.loops:
        header = ssa.block_of(loop.header)
        term = header.term
        if not isinstance(term, SCondBr):
            continue
        cond = term.cond
        if not (isinstance(cond, SBin) and cond.op in _FLIP):
            continue
        iv_use, bound = None, None
        flipped = False
        if isinstance(cond.left, SVarUse) and isinstance(
                cond.right, (SConst, SVarUse)):
            iv_use, bound = cond.left, cond.right
        elif isinstance(cond.right, SVarUse) and isinstance(cond.left,
                                                            SConst):
            iv_use, bound = cond.right, cond.left
            flipped = True
        if iv_use is None:
            continue
        record = records.get(iv_use.symbol)
        if record is None:
            continue
        stride, temp, phi_blocks = record
        if header not in phi_blocks:
            continue  # t == i*stride not guaranteed at this test
        if not _iv_is_linear_in_loop(ssa, loop, iv_use.symbol):
            continue
        t_var = _live_temp_version(header, temp)
        if t_var is None:
            continue  # no version of t reaches the test
        new_bound = _make_bound(ctx, loop, header, bound, stride, temp)
        if new_bound is None:
            continue
        op = cond.op if not flipped else _FLIP[cond.op]
        if stride < 0:
            op = _FLIP[op]
        t_use = SVarUse(temp, t_var)
        term.cond = (SBin(op, t_use, new_bound) if not flipped
                     else SBin(_FLIP[op], new_bound, t_use))
        replaced += 1
    return replaced


def _make_bound(ctx: PREContext, loop, header: SSABlock, bound,
                stride, temp) -> Optional[object]:
    """The replaced test compares against ``bound * stride``.

    Constant bounds fold; loop-invariant variable bounds get the multiply
    inserted into the loop preheader (the unique predecessor outside the
    loop)."""
    from ..ir import make_temp
    from ..ssa import SAssign

    if isinstance(bound, SConst):
        return SConst(bound.value * stride, temp.ty)
    # variable bound: must be loop-invariant (def dominates the header
    # from outside the loop) with a unique outside predecessor
    assert isinstance(bound, SVarUse)
    var = bound.var
    if var is None or var.def_block is None:
        return None
    ssa = ctx.ssa
    if var.def_block.base in loop.blocks:
        return None  # redefined inside the loop: not invariant
    outside_preds = [p for p in header.preds
                     if p.base not in loop.blocks]
    if len(outside_preds) != 1:
        return None
    preheader = outside_preds[0]
    if not ssa.dom.dominates(var.def_block.base, preheader.base):
        return None
    bound_temp = make_temp(temp.ty, "lftr")
    bt_var = ssa.new_version(bound_temp)
    bt_var.def_block = preheader
    assign = SAssign(bt_var, SBin("*", SVarUse(bound.symbol, var),
                                  SConst(stride, temp.ty)))
    bt_var.def_site = assign
    preheader.insert_before_term(assign)
    return SVarUse(bound_temp, bt_var)
