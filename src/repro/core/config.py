"""Optimization configuration (the paper's experimental knobs)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..ssa.spec import DEFAULT_STATIC_THRESHOLD, SpecMode


@dataclass(frozen=True)
class SpecConfig:
    """Selects which speculation and which SSAPRE optimizations run.

    The paper's configurations map to:

    * :meth:`base` — O3 + TBAA: classical SSAPRE (register promotion +
      expression PRE) with control speculation, no data speculation.
    * :meth:`profile` — the paper's headline configuration: data
      speculation flagged from a training-run alias profile (§3.2.1),
      control speculation guided by the edge profile.
    * :meth:`heuristic` — data speculation from the three syntax rules of
      §3.2.2 (no profiling at all).
    * :meth:`static` — data speculation from static probabilistic alias
      analysis (``repro.analysis.prob_alias``): profile-free like
      heuristic, but likeliness is a per-site probability in [0, 1]
      thresholded by :attr:`static_threshold` — works cold, with no
      train input at all.
    * :meth:`aggressive` — ignore every may-alias: Figure 12's unsafe
      upper bound (valid only when aliasing never materializes at
      runtime).
    * :meth:`unoptimized` — no PRE at all (for calibration).
    """

    mode: SpecMode = SpecMode.OFF
    control_speculation: bool = True
    use_edge_profile: bool = False
    register_promotion: bool = True
    expression_pre: bool = True
    strength_reduction: bool = True
    lftr: bool = True
    store_forwarding: bool = True
    use_tbaa: bool = True
    #: flow-sensitive µ/χ list refinement (the paper's Figure 4 step 5)
    flow_refine: bool = True
    #: latency-aware list scheduling of the generated code (§5.1 notes
    #: scheduling quality matters for check instructions)
    schedule: bool = True
    #: machine-level scheduling mode: "block" (per-block list
    #: scheduling, the bit-identical baseline) or "superblock"
    #: (profile-guided trace formation + hot-path layout,
    #: docs/scheduling.md); the CLI exposes this as --sched
    scheduler: str = "block"
    #: superblock formation: per-function budget of tail-duplicated
    #: instructions (0 disables tail duplication)
    superblock_tail_budget: int = 24
    #: likeliness threshold for profile flags (§3.1): aliases observed in
    #: fewer than this fraction of a site's executions stay speculative
    likeliness_threshold: float = 0.0
    #: probability cutoff for the static source: a may-alias whose
    #: statically-computed probability reaches this is treated as real
    static_threshold: float = DEFAULT_STATIC_THRESHOLD
    #: interprocedural mod/ref summaries refine call-site µ/χ lists
    #: (a static sharpening ORC's baseline also performs)
    interprocedural_modref: bool = True
    #: which points-to analysis seeds the alias classes:
    #: "steensgaard" (the paper's choice) or "andersen" (inclusion-based)
    pointer_analysis: str = "steensgaard"
    #: False = speculative reloads reuse the register with NO check
    #: instruction (the paper's "manually tuned" §5.1 variant; unsafe
    #: unless the aliasing never materializes on the measured input)
    emit_checks: bool = True
    dce: bool = True
    max_rounds: int = 4
    #: simulator dispatch implementation (:data:`repro.target.ENGINES`):
    #: "predecode" (default), "trace" (hot-trace JIT) or "classic".
    #: A machine-side knob, not a compiler one — it never changes the
    #: generated code, only how the service/CLI simulate it; it rides on
    #: the config so the wire protocol's spec strings can select it
    #: (``resolve_config("profile+trace")``).
    engine: str = "predecode"

    @property
    def spec_source(self) -> str:
        """The wire name of the speculation-flag provenance
        (:class:`repro.ssa.spec.SpecSource` implementations)."""
        return self.mode.value

    @property
    def needs_alias_profile(self) -> bool:
        return self.mode is SpecMode.PROFILE

    @property
    def needs_train_run(self) -> bool:
        """Does compiling under this config require training inputs?"""
        return self.needs_alias_profile or self.use_edge_profile

    @property
    def data_speculation(self) -> bool:
        return self.mode is not SpecMode.OFF

    @staticmethod
    def unoptimized() -> "SpecConfig":
        return SpecConfig(mode=SpecMode.OFF, control_speculation=False,
                          register_promotion=False, expression_pre=False,
                          strength_reduction=False, lftr=False,
                          store_forwarding=False, dce=False)

    @staticmethod
    def base() -> "SpecConfig":
        return SpecConfig(mode=SpecMode.OFF)

    @staticmethod
    def profile() -> "SpecConfig":
        return SpecConfig(mode=SpecMode.PROFILE, use_edge_profile=True)

    @staticmethod
    def heuristic() -> "SpecConfig":
        return SpecConfig(mode=SpecMode.HEURISTIC)

    @staticmethod
    def static(threshold: float = DEFAULT_STATIC_THRESHOLD) -> "SpecConfig":
        """Cold-start configuration: full data speculation with no
        training run — flags from static probabilistic alias analysis,
        control speculation from static branch heuristics only."""
        return SpecConfig(mode=SpecMode.STATIC, static_threshold=threshold)

    @staticmethod
    def aggressive() -> "SpecConfig":
        # The "manually tuned" upper bound of §5.1/Fig. 12 gets the same
        # edge-profile-guided control speculation as the profile build —
        # it differs only in ignoring aliases without emitting checks.
        return SpecConfig(mode=SpecMode.AGGRESSIVE, use_edge_profile=True)

    def but(self, **changes) -> "SpecConfig":
        """A copy with some fields changed (ablation helper)."""
        return replace(self, **changes)
