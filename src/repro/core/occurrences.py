"""Expression occurrences for SSAPRE.

SSAPRE works one *lexically identified expression* at a time (paper §4.1).
This module defines:

* :func:`lexical_key` — the lexical identity of a candidate expression
  (symbols by identity, constants by value, structure by shape), ignoring
  SSA versions;
* collection of **real occurrences** with parent links so CodeMotion can
  rewrite an occurrence in place;
* **left occurrences** (stores of the same lexical shape, after Lo et
  al. [25]) which *define* the expression's value for register promotion;
* the Φ occurrence / Φ-operand records that Rename, DownSafety,
  WillBeAvailable and Finalize annotate.

An occurrence's *versions* map each leaf symbol (including the virtual
variable of a load) to the SSA version holding at the occurrence point —
the signature Rename compares, speculatively skipping weak updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..ir import Symbol
from ..ssa import (SAddrOf, SAssign, SBin, SCall, SCondBr, SConst, SExpr,
                   SJump, SLoad, SPrint, SReturn, SSABlock, SSAFunction,
                   SSAVar, SStmt, SStore, SUn, SVarUse)
from ..ssa.construct import is_memory_resident


def lexical_key(expr: SExpr) -> Optional[tuple]:
    """Lexical identity of an expression occurrence (``None`` if the node
    cannot be a PRE candidate leaf structure)."""
    if isinstance(expr, SConst):
        return ("const", expr.value)
    if isinstance(expr, SVarUse):
        return ("var", expr.symbol.uid)
    if isinstance(expr, SAddrOf):
        return ("addr", expr.symbol.uid)
    if isinstance(expr, SLoad):
        sub = lexical_key(expr.addr)
        if sub is None:
            return None
        return ("load", expr.site.vvar.uid, sub)
    if isinstance(expr, SBin):
        left, right = lexical_key(expr.left), lexical_key(expr.right)
        if left is None or right is None:
            return None
        return ("bin", expr.op, left, right)
    if isinstance(expr, SUn):
        sub = lexical_key(expr.operand)
        if sub is None:
            return None
        return ("un", expr.op, sub)
    return None


def leaf_versions(expr: SExpr) -> Dict[Symbol, SSAVar]:
    """All (symbol → SSA version) pairs the occurrence depends on,
    including the own virtual-variable version of every contained load."""
    versions: Dict[Symbol, SSAVar] = {}
    for node in expr.walk():
        if isinstance(node, SVarUse):
            assert node.var is not None
            versions[node.symbol] = node.var
        elif isinstance(node, SLoad):
            assert node.own_mu.var is not None
            versions[node.own_mu.symbol] = node.own_mu.var
    return versions


@dataclass
class ParentLink:
    """Where an occurrence node lives, so it can be replaced in place.

    ``container`` is the statement/terminator; ``owner`` is either the
    container (attribute access) or an inner expression node; ``attr`` the
    attribute name; ``index`` for list attributes (e.g. print/call args).
    """

    container: object
    owner: object
    attr: str
    index: Optional[int] = None

    def replace(self, new_node: SExpr) -> None:
        if self.index is None:
            setattr(self.owner, self.attr, new_node)
        else:
            getattr(self.owner, self.attr)[self.index] = new_node


class Occurrence:
    """Base class for occurrences of one expression class."""

    __slots__ = ("block", "seq", "cls")

    def __init__(self, block: SSABlock, seq: int) -> None:
        self.block = block
        self.seq = seq
        self.cls: Optional[int] = None


class RealOcc(Occurrence):
    """A computation of E in the program."""

    __slots__ = ("node", "parent", "versions", "speculative", "save",
                 "reload", "avail_def", "temp_var", "injuries")

    def __init__(self, block: SSABlock, seq: int, node: SExpr,
                 parent: ParentLink) -> None:
        super().__init__(block, seq)
        self.node = node
        self.parent = parent
        self.versions: Dict[Symbol, SSAVar] = {}
        #: matched only by skipping speculative weak updates → needs ld.c
        self.speculative = False
        self.save = False
        self.reload = False
        self.avail_def: Optional[object] = None
        self.temp_var: Optional[SSAVar] = None
        #: injuring defs skipped (strength reduction repairs): list of
        #: (SAssign, delta_expr) to apply to the temp after each injury
        self.injuries: List[object] = []

    def __repr__(self) -> str:
        return f"<RealOcc {self.node!r} @{self.block.name}#{self.seq}>"


class LeftOcc(Occurrence):
    """A store of the same lexical shape (defines E's value)."""

    __slots__ = ("stmt", "versions", "forwardable", "save", "temp_var")

    def __init__(self, block: SSABlock, seq: int, stmt: SStore) -> None:
        super().__init__(block, seq)
        self.stmt = stmt
        self.versions: Dict[Symbol, SSAVar] = {}
        #: value is a leaf (variable/const) we can copy into the temp
        self.forwardable = False
        self.save = False
        self.temp_var: Optional[SSAVar] = None

    def __repr__(self) -> str:
        return f"<LeftOcc {self.stmt!r} @{self.block.name}#{self.seq}>"


class InsertedOcc(Occurrence):
    """A computation inserted at a Φ operand (end of predecessor)."""

    __slots__ = ("versions", "temp_var", "assign")

    def __init__(self, block: SSABlock) -> None:
        super().__init__(block, 1 << 30)  # at block end
        self.versions: Dict[Symbol, SSAVar] = {}
        self.temp_var: Optional[SSAVar] = None
        self.assign: Optional[SAssign] = None

    def __repr__(self) -> str:
        return f"<InsertedOcc @{self.block.name}>"


class PhiOpnd:
    """One operand of an expression Φ."""

    __slots__ = ("pred", "def_occ", "has_real_use", "speculative",
                 "versions", "insert", "injuries")

    def __init__(self, pred: SSABlock) -> None:
        self.pred = pred
        self.def_occ: Optional[object] = None  # ⊥ when None
        self.has_real_use = False
        self.speculative = False
        #: leaf versions current at the end of ``pred`` (for insertions);
        #: None = not computable on this edge (insertions impossible).
        #: An *empty dict* is valid: constant expressions have no leaves.
        self.versions: Optional[Dict[Symbol, SSAVar]] = {}
        self.insert = False
        self.injuries: List[object] = []

    @property
    def is_bottom(self) -> bool:
        return self.def_occ is None


class PhiOcc(Occurrence):
    """An expression Φ (capital phi, distinct from variable φs)."""

    __slots__ = ("operands", "downsafe", "can_be_avail", "later",
                 "speculated", "temp_var", "used")

    def __init__(self, block: SSABlock) -> None:
        super().__init__(block, -1)  # Φs live at block start
        self.operands: List[PhiOpnd] = [PhiOpnd(p) for p in block.preds]
        self.downsafe = True
        self.can_be_avail = True
        self.later = True
        #: made available only via control speculation
        self.speculated = False
        self.temp_var: Optional[SSAVar] = None
        self.used = False

    @property
    def will_be_avail(self) -> bool:
        return self.can_be_avail and not self.later

    def __repr__(self) -> str:
        return f"<PhiOcc @{self.block.name}>"


@dataclass
class ExprClass:
    """All occurrences of one lexical expression in a function."""

    key: tuple
    template: SExpr                     # a representative occurrence node
    real_occs: List[RealOcc] = field(default_factory=list)
    left_occs: List[LeftOcc] = field(default_factory=list)
    phis: Dict[SSABlock, PhiOcc] = field(default_factory=dict)

    @property
    def is_load(self) -> bool:
        """Register-promotion candidates: direct reads of memory-resident
        scalars and indirect loads."""
        return self.key[0] == "load" or (
            self.key[0] == "var" and self._template_memory_resident()
        )

    def _template_memory_resident(self) -> bool:
        return isinstance(self.template, SVarUse) and is_memory_resident(
            self.template.symbol
        )


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------


def _is_simple_leaf(expr: SExpr) -> bool:
    """Leaves SSAPRE treats as always-available operands."""
    if isinstance(expr, (SConst, SAddrOf)):
        return True
    if isinstance(expr, SVarUse):
        return not is_memory_resident(expr.symbol)
    return False


def _candidate_filter_load(node: SExpr) -> bool:
    """First-order load candidates: every sub-expression of the address is
    a simple leaf or an arithmetic tree over simple leaves (no nested
    loads — those are promoted in an earlier round)."""
    if isinstance(node, SVarUse):
        return is_memory_resident(node.symbol)
    if isinstance(node, SLoad):
        return all(
            _is_simple_leaf(n) or isinstance(n, (SBin, SUn))
            for n in node.addr.walk()
        ) and not any(isinstance(n, SLoad) for n in node.addr.walk())
    return False


def _candidate_filter_arith(node: SExpr) -> bool:
    """First-order arithmetic candidates: a binary/unary op over simple
    leaves (memory reads must already be promoted to temps)."""
    if isinstance(node, SBin):
        return (_is_simple_leaf(node.left) and _is_simple_leaf(node.right)
                and not (isinstance(node.left, SConst)
                         and isinstance(node.right, SConst)))
    if isinstance(node, SUn):
        return (_is_simple_leaf(node.operand)
                and not isinstance(node.operand, SConst))
    return False


def _walk_with_parents(stmt: object):
    """Yield (node, ParentLink) for every expression node in a statement
    or terminator, in evaluation (post-) order."""

    def rec(node: SExpr, owner: object, attr: str, index, container):
        if isinstance(node, SLoad):
            yield from rec(node.addr, node, "addr", None, container)
        elif isinstance(node, SBin):
            yield from rec(node.left, node, "left", None, container)
            yield from rec(node.right, node, "right", None, container)
        elif isinstance(node, SUn):
            yield from rec(node.operand, node, "operand", None, container)
        yield node, ParentLink(container, owner, attr, index)

    if isinstance(stmt, SAssign):
        yield from rec(stmt.rhs, stmt, "rhs", None, stmt)
    elif isinstance(stmt, SStore):
        yield from rec(stmt.addr, stmt, "addr", None, stmt)
        yield from rec(stmt.value, stmt, "value", None, stmt)
    elif isinstance(stmt, (SCall, SPrint)):
        for i, arg in enumerate(stmt.args):
            yield from rec(arg, stmt, "args", i, stmt)
    elif isinstance(stmt, SCondBr):
        yield from rec(stmt.cond, stmt, "cond", None, stmt)
    elif isinstance(stmt, SReturn):
        if stmt.value is not None:
            yield from rec(stmt.value, stmt, "value", None, stmt)


def _is_pre_generated(stmt: object) -> bool:
    """Statements materialized by a previous SSAPRE round (saves, checks,
    insertions, repairs) — their contents must not be re-collected, or
    every round would wrap the previous round's save in another temp (and
    would destroy check statements by "promoting" them)."""
    from ..ir import StorageKind

    return (isinstance(stmt, SAssign)
            and isinstance(stmt.lhs, SSAVar)
            and stmt.lhs.symbol.kind is StorageKind.TEMP
            and stmt.lhs.symbol.name.startswith("pre"))


def collect_expr_classes(ssa: SSAFunction, kind: str,
                         include_stores: bool = True
                         ) -> List[ExprClass]:
    """Collect candidate occurrences of ``kind`` ("load" or "arith").

    Occurrences are sequence-numbered in dominator preorder, the order all
    later SSAPRE steps iterate.  For ``"load"`` classes, stores of the same
    lexical shape are collected as left occurrences (register promotion).
    """
    is_candidate = (_candidate_filter_load if kind == "load"
                    else _candidate_filter_arith)
    classes: Dict[tuple, ExprClass] = {}
    seq = 0
    for block in ssa.preorder():
        for stmt in list(block.stmts) + (
            [block.term] if block.term is not None else []
        ):
            seq += 1
            pre_generated = _is_pre_generated(stmt)
            for node, parent in _walk_with_parents(stmt):
                if pre_generated and node is stmt.rhs:
                    # never re-collect the value a previous round's
                    # save/check materializes (it would wrap saves in
                    # more temps and replace check statements), but DO
                    # collect its sub-expressions: the address arithmetic
                    # of a checked load is ordinary PRE material.
                    continue
                if not is_candidate(node):
                    continue
                key = lexical_key(node)
                if key is None:
                    continue
                ec = classes.get(key)
                if ec is None:
                    ec = ExprClass(key, node)
                    classes[key] = ec
                ec.real_occs.append(RealOcc(block, seq, node, parent))
            if (kind == "load" and include_stores
                    and isinstance(stmt, SStore)):
                key = ("load", stmt.site.vvar.uid, lexical_key(stmt.addr))
                if key[2] is None:
                    continue
                ec = classes.get(key)
                if ec is None:
                    # No real occurrence seen yet; the template is filled
                    # in when one appears (store-only classes are dropped).
                    ec = ExprClass(key, None)  # type: ignore[arg-type]
                    classes[key] = ec
                left = LeftOcc(block, seq, stmt)
                left.forwardable = _is_simple_leaf(stmt.value)
                ec.left_occs.append(left)
    result = []
    for ec in classes.values():
        if not ec.real_occs:
            continue  # store-only shape: nothing to promote
        if ec.template is None:
            ec.template = ec.real_occs[0].node
        result.append(ec)
    return result
