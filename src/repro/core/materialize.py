"""SSAPRE steps 5–6: Finalize and CodeMotion (paper §4.4, Appendix B).

**Finalize** walks the dominator tree with a scoped availability stack per
rename class and decides, for every real occurrence, whether it is a *save*
(first computation — keeps the computation, stores it into the expression
temporary ``t``) or a *reload* (redundant — replaced by ``t``), and which Φ
operands need computations *inserted* at the end of their predecessor.

**CodeMotion** materializes the decision:

* saves become ``t = E``; reloads become uses of ``t``;
* Φ operand insertions append ``t = E`` (with the operand's versions) at
  the predecessor's end — these execute speculatively on paths that never
  needed E, so they are marked ``sload`` (non-faulting, IA-64 ``ld.s``)
  when E contains a load;
* **speculative reloads** (occurrences that joined their class only by
  skipping speculative weak updates) become *check* statements
  ``t = E  [check]`` — the paper's ld.c — and every definition whose value
  can reach the check is flagged ``advance`` (ld.a), following Appendix
  B's ``Set_speculative_check_flag`` / ``Set_speculative_load_flag``;
* a check that re-validates a temp consumed by an enclosing expression
  records its ``check_source``, giving Appendix B's chk.a chaining for
  indirect references whose address is itself a checked temp;
* strength-reduction *injury repairs* insert ``t = t + Δ·stride`` after
  each injuring definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import Symbol, Type, make_temp
from ..ssa import (Mu, SAssign, SBin, SConst, SExpr, SLoad, SPhi, SSABlock,
                   SSAFunction, SSAVar, SUn, SVarUse)
from .engine import PREContext, SSAPRE
from .occurrences import (ExprClass, InsertedOcc, LeftOcc, PhiOcc, PhiOpnd,
                          RealOcc)


class Materializer:
    """Finalize + CodeMotion for one expression class."""

    def __init__(self, pre: SSAPRE) -> None:
        self.pre = pre
        self.ctx: PREContext = pre.ctx
        self.ec: ExprClass = pre.ec
        self.ssa: SSAFunction = pre.ssa
        self._avail: Dict[int, List[object]] = {}
        self._needs_temp: Set[int] = set()  # id() of def occurrences
        self._inserted: List[InsertedOcc] = []
        self._temp: Optional[Symbol] = None
        #: statistics
        self.checks_emitted = 0
        self.reloads = 0
        self.insertions = 0

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        actions: List[Tuple[str, object]] = [("visit", self.ssa.entry)]
        dom = self.ssa.dom
        marks: List[Dict[int, int]] = []
        while actions:
            kind, payload = actions.pop()
            if kind == "pop":
                lens: Dict[int, int] = payload  # type: ignore[assignment]
                # truncate EVERY class stack to its snapshot length —
                # classes first pushed inside the subtree default to 0,
                # otherwise their entries would leak into sibling blocks
                for cls, stack in self._avail.items():
                    del stack[lens.get(cls, 0):]
                continue
            block: SSABlock = payload  # type: ignore[assignment]
            lens = {cls: len(st) for cls, st in self._avail.items()}
            self._finalize_block(block)
            actions.append(("pop", lens))
            for base in reversed(dom.children[block.base]):
                actions.append(("visit", self.ssa.block_of(base)))

    def _push(self, cls: int, occ: object) -> None:
        self._avail.setdefault(cls, []).append(occ)

    def _top(self, cls: Optional[int]) -> Optional[object]:
        if cls is None:
            return None
        stack = self._avail.get(cls)
        return stack[-1] if stack else None

    def _finalize_block(self, block: SSABlock) -> None:
        phi = self.ec.phis.get(block)
        if phi is not None and phi.will_be_avail:
            self._push(phi.cls, phi)
        for occ in self.pre._occs_by_block.get(block, ()):
            if isinstance(occ, LeftOcc):
                if occ.forwardable:
                    occ.save = True
                    self._push(occ.cls, occ)
            else:
                assert isinstance(occ, RealOcc)
                d = self._top(occ.cls)
                if d is None:
                    occ.save = True
                    self._push(occ.cls, occ)
                else:
                    occ.reload = True
                    occ.avail_def = d
                    self._needs_temp.add(id(d))
        for succ in block.succs:
            succ_phi = self.ec.phis.get(succ)
            if succ_phi is None or not succ_phi.will_be_avail:
                continue
            opnd = succ_phi.operands[succ.pred_index(block)]
            needs_insert = self._operand_needs_insert(opnd)
            if not needs_insert:
                d = opnd.def_occ
                top = self._top(getattr(d, "cls", None))
                if top is not None and not (
                    isinstance(top, PhiOcc) and not top.will_be_avail
                ) and not (
                    isinstance(top, LeftOcc) and not top.forwardable
                ):
                    opnd.def_occ = top
                    self._needs_temp.add(id(top))
                else:
                    # has_real_use promised a computed value on this
                    # path, but nothing availed dominates the edge:
                    # recompute instead.
                    needs_insert = True
            if needs_insert:
                if opnd.versions is None:
                    continue  # no versions computable; leave ⊥ (path
                    # cannot use the Φ value — occurs only on dead paths)
                ins = InsertedOcc(block)
                ins.versions = dict(opnd.versions)
                ins.cls = succ_phi.cls
                opnd.def_occ = ins
                opnd.insert = True
                self._inserted.append(ins)
                self._needs_temp.add(id(ins))
            self._needs_temp.add(id(succ_phi))

    @staticmethod
    def _operand_needs_insert(opnd: PhiOpnd) -> bool:
        """Kennedy et al. [21] Finalize: insert iff the operand is ⊥ or
        carries no real occurrence and is defined by an unavailable Φ."""
        if opnd.is_bottom:
            return True
        if isinstance(opnd.def_occ, PhiOcc) \
                and not opnd.def_occ.will_be_avail \
                and not opnd.has_real_use:
            return True
        # A non-forwardable store defines the value but cannot hand it
        # over in a register: recompute (load) it at the predecessor end.
        return (isinstance(opnd.def_occ, LeftOcc)
                and not opnd.def_occ.forwardable
                and not opnd.has_real_use)

    # ------------------------------------------------------------------
    # CodeMotion
    # ------------------------------------------------------------------
    def code_motion(self) -> None:
        if not self._worth_materializing():
            return
        ty = self._expr_type(self.ec.template)
        self._temp = make_temp(ty, "pre")
        self._materialize_defs()
        self._materialize_phis()
        self._materialize_reloads()
        self._materialize_injuries()
        self.ctx.invalidate_cache()

    def _worth_materializing(self) -> bool:
        if any(o.reload for o in self.ec.real_occs):
            return True
        return any(p.will_be_avail for p in self.ec.phis.values())

    @staticmethod
    def _expr_type(expr: SExpr) -> Type:
        from ..ir import INT

        if isinstance(expr, SLoad):
            return expr.value_ty
        if isinstance(expr, SVarUse):
            return expr.symbol.ty
        if isinstance(expr, SBin):
            left = Materializer._expr_type(expr.left)
            right = Materializer._expr_type(expr.right)
            from ..ir import common_arith_type
            from ..ir.expr import COMPARISON_OPS

            if expr.op in COMPARISON_OPS:
                return INT
            return common_arith_type(left, right)
        if isinstance(expr, SUn):
            return Materializer._expr_type(expr.operand)
        return INT

    def _new_temp_var(self, cls: Optional[int]) -> SSAVar:
        assert self._temp is not None
        var = self.ssa.new_version(self._temp)
        var.temp_class = (id(self.ec), cls)
        return var

    def _insert_before(self, block: SSABlock, container: object,
                       stmt: SAssign) -> None:
        stmt.block = block
        try:
            index = block.stmts.index(container)
        except ValueError:
            index = len(block.stmts)  # container is the terminator
        block.stmts.insert(index, stmt)

    def _insert_after(self, block: SSABlock, container: object,
                      stmt: SAssign) -> None:
        stmt.block = block
        index = block.stmts.index(container)
        block.stmts.insert(index + 1, stmt)

    # ---- defs ------------------------------------------------------------
    def _materialize_defs(self) -> None:
        for occ in self.ec.real_occs:
            if occ.save and id(occ) in self._needs_temp:
                var = self._new_temp_var(occ.cls)
                var.def_block = occ.block
                save = SAssign(var, occ.node)
                var.def_site = save
                self._insert_before(occ.block, occ.parent.container, save)
                occ.parent.replace(SVarUse(self._temp, var))
                occ.temp_var = var
        for occ in self.ec.left_occs:
            if occ.save and id(occ) in self._needs_temp:
                var = self._new_temp_var(occ.cls)
                var.def_block = occ.block
                value = self._clone_leaf(occ.stmt.value)
                save = SAssign(var, value)
                var.def_site = save
                self._insert_after(occ.block, occ.stmt, save)
                occ.temp_var = var
        for ins in self._inserted:
            var = self._new_temp_var(ins.cls)
            var.def_block = ins.block
            expr = self._rebuild(self.ec.template, ins.versions)
            assign = SAssign(var, expr)
            var.def_site = assign
            if self._contains_load(expr):
                assign.spec_kind = "sload"  # control speculation: ld.s
            ins.block.insert_before_term(assign)
            ins.assign = assign
            ins.temp_var = var
            self.insertions += 1

    def _materialize_phis(self) -> None:
        assert self._temp is not None
        for phi in self.ec.phis.values():
            if not phi.will_be_avail:
                continue
            var = self._new_temp_var(phi.cls)
            var.def_block = phi.block
            phi.temp_var = var
        for phi in self.ec.phis.values():
            if not phi.will_be_avail:
                continue
            sphi = SPhi(self._temp, len(phi.block.preds))
            sphi.block = phi.block
            sphi.lhs = phi.temp_var
            phi.temp_var.def_site = sphi
            for i, opnd in enumerate(phi.operands):
                d = opnd.def_occ
                sphi.args[i] = getattr(d, "temp_var", None) or phi.temp_var
            phi.block.phis.append(sphi)

    # ---- reloads and checks ------------------------------------------------
    def _def_speculative(self, d: object,
                         visited: Optional[Set[int]] = None) -> bool:
        """Does the value arriving from ``d`` cross a speculative edge
        (some Φ operand matched only via weak-update skipping)?"""
        if visited is None:
            visited = set()
        if not isinstance(d, PhiOcc) or id(d) in visited:
            return False
        visited.add(id(d))
        for opnd in d.operands:
            if opnd.speculative:
                return True
            if self._def_speculative(opnd.def_occ, visited):
                return True
        return False

    def _materialize_reloads(self) -> None:
        assert self._temp is not None
        for occ in self.ec.real_occs:
            if not occ.reload:
                continue
            d = occ.avail_def
            dv = getattr(d, "temp_var", None)
            if dv is None:
                # def never materialized (e.g. left occurrence without a
                # temp) — keep the original computation.
                occ.reload = False
                occ.save = True
                continue
            self.reloads += 1
            needs_check = (occ.speculative or self._def_speculative(d)) \
                and self.ctx.emit_checks
            if needs_check and self._contains_load(occ.node):
                var = self._new_temp_var(occ.cls)
                var.def_block = occ.block
                check = SAssign(var, occ.node)
                var.def_site = check
                check.spec_kind = "check"
                check.check_source = dv
                self._insert_before(occ.block, occ.parent.container, check)
                occ.parent.replace(SVarUse(self._temp, var))
                occ.temp_var = var
                self.checks_emitted += 1
                self._mark_advance(d)
            else:
                occ.parent.replace(SVarUse(self._temp, dv))

    def _mark_advance(self, d: object,
                      visited: Optional[Set[int]] = None) -> None:
        """Appendix B's Set_speculative_load_flag: every definition whose
        value can reach a check becomes an advanced load (ld.a)."""
        if visited is None:
            visited = set()
        if id(d) in visited:
            return
        visited.add(id(d))
        if isinstance(d, PhiOcc):
            for opnd in d.operands:
                if opnd.def_occ is not None:
                    self._mark_advance(opnd.def_occ, visited)
            return
        assign: Optional[SAssign] = None
        if isinstance(d, RealOcc):
            site = d.temp_var.def_site if d.temp_var is not None else None
            assign = site if isinstance(site, SAssign) else None
        elif isinstance(d, InsertedOcc):
            assign = d.assign
        elif isinstance(d, LeftOcc):
            return  # the store itself arms nothing; value came from a reg
        if assign is not None and assign.spec_kind in (None, "sload") \
                and self._contains_load(assign.rhs):
            assign.spec_kind = "advance"

    # ---- strength-reduction repairs -----------------------------------
    def _materialize_injuries(self) -> None:
        if not self.ctx.repair_injuries or self._temp is None:
            return
        stride = self._stride_of_template()
        if stride is None:
            return
        iv_symbol = self._iv_of_template()
        if iv_symbol is not None:
            phi_blocks = {p.block for p in self.ec.phis.values()
                          if p.will_be_avail}
            self.ctx.sr_records.append(
                (iv_symbol, stride, self._temp, phi_blocks)
            )
        repaired: Set[int] = set()
        anchor = next(
            (o.temp_var for o in self.ec.real_occs if o.temp_var is not None),
            None,
        )
        injury_sites: List[Tuple[object, Optional[int]]] = []
        for occ in self.ec.real_occs:
            injury_sites.extend((site, occ.cls) for site in occ.injuries)
        for phi in self.ec.phis.values():
            if not phi.will_be_avail:
                continue
            for opnd in phi.operands:
                injury_sites.extend((site, phi.cls)
                                    for site in opnd.injuries)
        for site, cls in injury_sites:
            if id(site) in repaired:
                continue
            repaired.add(id(site))
            delta = _injury_delta_value(site)
            if delta is None:
                continue
            var = self._new_temp_var(cls)
            block = site.block
            var.def_block = block
            # the repair reads the temp version live at the injury (the
            # nearest dominating def); out-of-SSA collapses every version
            # onto the shared symbol, so the version only has to satisfy
            # the SSA verifier's dominance check
            use_var = self._temp_version_at(site) or anchor
            use = SVarUse(self._temp, use_var)
            repair = SAssign(
                var, SBin("+", use, SConst(delta * stride, self._temp.ty))
            )
            var.def_site = repair
            self._insert_after(block, site, repair)

    def _temp_version_at(self, site: object) -> Optional[SSAVar]:
        """The version of the SSAPRE temp live just before ``site``:
        scan backwards from the site, then up the dominator tree."""
        temp = self._temp
        block = site.block
        idx = block.stmts.index(site)
        idoms = self.ssa.dom.idom
        while True:
            for stmt in reversed(block.stmts[:idx]):
                lhs = getattr(stmt, "lhs", None) or getattr(stmt, "dst",
                                                            None)
                if isinstance(lhs, SSAVar) and lhs.symbol is temp:
                    return lhs
            for phi in block.phis:
                if phi.lhs is not None and phi.lhs.symbol is temp:
                    return phi.lhs
            parent = idoms.get(block.base)
            if parent is None or parent is block.base:
                return None
            block = self.ssa.block_of(parent)
            idx = len(block.stmts)

    def _stride_of_template(self):
        t = self.ec.template
        if isinstance(t, SBin) and t.op == "*":
            if isinstance(t.right, SConst):
                return t.right.value
            if isinstance(t.left, SConst):
                return t.left.value
        return None

    def _iv_of_template(self):
        t = self.ec.template
        if isinstance(t, SBin) and t.op == "*":
            if isinstance(t.left, SVarUse) and isinstance(t.right, SConst):
                return t.left.symbol
            if isinstance(t.right, SVarUse) and isinstance(t.left, SConst):
                return t.right.symbol
        return None

    # ---- expression cloning ------------------------------------------------
    def _clone_leaf(self, expr: SExpr) -> SExpr:
        if isinstance(expr, SConst):
            return SConst(expr.value, expr.ty)
        assert isinstance(expr, SVarUse)
        return SVarUse(expr.symbol, expr.var)

    def _rebuild(self, template: SExpr,
                 versions: Dict[Symbol, SSAVar]) -> SExpr:
        from ..ssa import SAddrOf

        if isinstance(template, SConst):
            return SConst(template.value, template.ty)
        if isinstance(template, SAddrOf):
            return SAddrOf(template.symbol)
        if isinstance(template, SVarUse):
            return SVarUse(template.symbol,
                           versions.get(template.symbol, template.var))
        if isinstance(template, SLoad):
            addr = self._rebuild(template.addr, versions)
            own = Mu(template.own_mu.symbol, template.own_mu.likely, True)
            own.var = versions.get(template.own_mu.symbol,
                                   template.own_mu.var)
            mus = [own]
            for mu in template.mus:
                if mu.is_own:
                    continue
                clone = Mu(mu.symbol, mu.likely, False)
                clone.var = versions.get(mu.symbol, mu.var)
                mus.append(clone)
            return SLoad(addr, template.value_ty, mus, own, template.site,
                         template.orig)
        if isinstance(template, SBin):
            return SBin(template.op, self._rebuild(template.left, versions),
                        self._rebuild(template.right, versions))
        if isinstance(template, SUn):
            return SUn(template.op, self._rebuild(template.operand, versions))
        raise TypeError(f"cannot rebuild {template!r}")  # pragma: no cover

    @staticmethod
    def _contains_load(expr: SExpr) -> bool:
        from ..ssa.construct import is_memory_resident

        for node in expr.walk():
            if isinstance(node, SLoad):
                return True
            if isinstance(node, SVarUse) and is_memory_resident(node.symbol):
                return True
        return False


def _injury_delta_value(site: SAssign):
    rhs = site.rhs
    if isinstance(rhs, SBin) and rhs.op in ("+", "-"):
        if isinstance(rhs.right, SConst):
            return -rhs.right.value if rhs.op == "-" else rhs.right.value
        if rhs.op == "+" and isinstance(rhs.left, SConst):
            return rhs.left.value
    return None


def run_ssapre_on_class(ctx: PREContext, ec: ExprClass,
                        allow_data_speculation: bool = True) -> Materializer:
    """Run all six steps on one expression class; returns the materializer
    (for its statistics)."""
    pre = SSAPRE(ctx, ec, allow_data_speculation)
    pre.insert_phis()
    pre.rename()
    pre.will_be_available()
    mat = Materializer(pre)
    mat.finalize()
    mat.code_motion()
    return mat
