"""The speculative SSAPRE engine — steps 1–4 of the paper's §4.

For one :class:`~repro.core.occurrences.ExprClass` this module runs:

* **Φ-Insertion** (paper Appendix A): Φs at DF⁺ of every occurrence, plus
  Φs wherever an operand variable has a φ — *traced through speculative
  weak updates*, so an expression killed only by unlikely χs still places
  its Φs;
* **Rename**: dominator-preorder renaming with an occurrence stack.  The
  paper's extension: when an occurrence's versions do not match the stack
  top directly, chase each version's def chain through speculative weak
  updates (unlikely χs); on success the occurrence joins the class with a
  speculation flag (it will need a check instruction).  Strength-reduction
  mode additionally chases *injuring* definitions (``i = i ± c``),
  recording repairs;
* **DownSafety**: Φs whose value can reach an exit or a kill without a
  real use are not down-safe, propagated backwards through Φ operands;
* **WillBeAvailable**: CanBeAvail/Later exactly as Kennedy et al. [21],
  with the control-speculation escape hatch of Lo et al. [25]: a
  non-down-safe Φ may still be made available when the edge profile (or,
  absent a profile, a loop-invariance heuristic) says the insertions are
  cheaper than the saved recomputations.

Materialization (Finalize + CodeMotion, incl. the paper's Appendix B check
generation) lives in :mod:`repro.core.materialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..ir import StorageKind, Symbol
from ..ssa import (Chi, SAssign, SBin, SCall, SConst, SLoad, SPhi, SReturn,
                   SSABlock, SSAFunction, SSAVar, SStore, SUn, SVarUse)
from .occurrences import (ExprClass, InsertedOcc, LeftOcc, Occurrence,
                          PhiOcc, PhiOpnd, RealOcc, leaf_versions)


@dataclass
class PREContext:
    """Shared state across expression classes and rounds."""

    ssa: SSAFunction
    control_speculation: bool = True
    edge_profile: Optional[object] = None      # profiling.EdgeProfile
    repair_injuries: bool = False              # strength-reduction mode
    emit_checks: bool = True                   # False: unsafe manual bound
    #: statistics: how many Φs were made available only by speculation
    speculated_phis: int = 0
    #: strength-reduction records for LFTR: (iv symbol, stride, temp
    #: symbol, header blocks where the temp's Φ is available)
    sr_records: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._loops = None
        self._version_at_cache: Dict[Tuple[int, int], Optional[SSAVar]] = {}

    @property
    def loops(self):
        if self._loops is None:
            from ..analysis.loops import LoopForest

            self._loops = LoopForest(self.ssa.fn, self.ssa.dom)
        return self._loops

    # ---- current version of a symbol at the end of a block ---------------
    def version_at_end(self, block: SSABlock,
                       symbol: Symbol) -> Optional[SSAVar]:
        key = (block.base.uid, symbol.uid)
        if key in self._version_at_cache:
            return self._version_at_cache[key]
        result: Optional[SSAVar] = None
        for stmt in reversed(block.stmts):
            if isinstance(stmt, SAssign) and isinstance(stmt.lhs, SSAVar) \
                    and stmt.lhs.symbol is symbol:
                result = stmt.lhs
                break
            if isinstance(stmt, SCall) and isinstance(stmt.dst, SSAVar) \
                    and stmt.dst.symbol is symbol:
                result = stmt.dst
                break
            chi_hit = None
            for chi in stmt.chis:
                if chi.symbol is symbol:
                    chi_hit = chi.lhs
            if chi_hit is not None:
                result = chi_hit
                break
        if result is None:
            for phi in block.phis:
                if phi.symbol is symbol:
                    result = phi.lhs
                    break
        if result is None:
            idom = self.ssa.dom.idom.get(block.base)
            if idom is not None:
                result = self.version_at_end(self.ssa.block_of(idom), symbol)
            else:
                # entry block: the live-on-entry version, if one was made
                result = self._entry_version(symbol)
        self._version_at_cache[key] = result
        return result

    def _entry_version(self, symbol: Symbol) -> Optional[SSAVar]:
        return self.ssa.entry_versions.get(symbol)

    def invalidate_cache(self) -> None:
        """Drop memoized version lookups (call after CodeMotion mutates the
        SSA function)."""
        self._version_at_cache.clear()


def _is_pre_temp(symbol: Symbol) -> bool:
    return symbol.kind is StorageKind.TEMP and symbol.name.startswith("pre")


@dataclass
class ChaseResult:
    ok: bool
    speculative: bool = False
    injuries: tuple = ()


class _StackEntry:
    __slots__ = ("occ", "versions", "used", "cls")

    def __init__(self, occ: Occurrence, versions, cls: int) -> None:
        self.occ = occ
        self.versions = versions  # dict for Real/Left, None for Phi
        self.used = False
        self.cls = cls


class SSAPRE:
    """Runs the analysis steps for one expression class."""

    def __init__(self, ctx: PREContext, ec: ExprClass,
                 allow_data_speculation: bool = True) -> None:
        self.ctx = ctx
        self.ec = ec
        self.ssa = ctx.ssa
        self.allow_data_speculation = allow_data_speculation
        self._next_cls = 0
        #: leaf symbols of the expression (versions signature domain)
        self.leaf_symbols: List[Symbol] = sorted(
            leaf_versions(ec.template), key=lambda s: s.uid
        ) if ec.template is not None else []
        #: strength reduction applies only to iv * const templates; only
        #: the induction operand may be matched through injuring defs
        self._sr_iv: Optional[Symbol] = None
        t = ec.template
        if (ctx.repair_injuries and isinstance(t, SBin) and t.op == "*"):
            if isinstance(t.left, SVarUse) and isinstance(t.right, SConst):
                self._sr_iv = t.left.symbol
            elif isinstance(t.right, SVarUse) and isinstance(t.left, SConst):
                self._sr_iv = t.right.symbol
        self._occs_by_block: Dict[SSABlock, List[Occurrence]] = {}
        for occ in ec.real_occs:
            self._occs_by_block.setdefault(occ.block, []).append(occ)
        for occ in ec.left_occs:
            self._occs_by_block.setdefault(occ.block, []).append(occ)
        for occs in self._occs_by_block.values():
            occs.sort(key=lambda o: o.seq)

    # ------------------------------------------------------------------
    # Step 1: Φ-Insertion (Appendix A)
    # ------------------------------------------------------------------
    def insert_phis(self) -> None:
        dom = self.ssa.dom
        df_blocks: Set[object] = set()
        occ_blocks = [o.block.base for o in self.ec.real_occs]
        occ_blocks += [o.block.base for o in self.ec.left_occs]
        df_blocks |= dom.iterated_frontier(occ_blocks)
        # Appendix A: Φs where operand variables merge — traced through
        # speculative weak updates (χ without flags).
        visited_phis: Set[SPhi] = set()
        for occ in self.ec.real_occs:
            for var in leaf_versions(occ.node).values():
                self._operand_phi_walk(var, visited_phis, df_blocks)
        for phi_stmt in visited_phis:
            df_blocks.add(phi_stmt.block.base)
        # Close under DF⁺ again (Φ blocks are merge points whose own DF may
        # demand further Φs) — cheap and keeps placement canonical.
        df_blocks |= dom.iterated_frontier(df_blocks)
        for base in df_blocks:
            block = self.ssa.block_of(base)
            if len(block.preds) < 2:
                continue
            if block not in self.ec.phis:
                self.ec.phis[block] = PhiOcc(block)

    def _operand_phi_walk(self, var: SSAVar, visited: Set[SPhi],
                          df_blocks: Set[object]) -> None:
        """Appendix A's ``while v is defined by χ without speculation
        flags: v ← operand of χ`` walk, recursing through φ operands."""
        var = self._skip_weak_defs(var)
        site = var.def_site
        if isinstance(site, SPhi) and site not in visited:
            visited.add(site)
            for arg in site.args:
                if arg is not None:
                    self._operand_phi_walk(arg, visited, df_blocks)

    def _skip_weak_defs(self, var: SSAVar) -> SSAVar:
        while isinstance(var.def_site, Chi):
            chi: Chi = var.def_site
            if chi.likely or not self.allow_data_speculation:
                break
            assert chi.rhs is not None
            var = chi.rhs
        return var

    # ------------------------------------------------------------------
    # Step 2: Rename
    # ------------------------------------------------------------------
    def rename(self) -> None:
        stack: List[_StackEntry] = []
        actions: List[Tuple[str, object]] = [("visit", self.ssa.entry)]
        dom = self.ssa.dom
        while actions:
            kind, payload = actions.pop()
            if kind == "pop":
                del stack[payload:]  # type: ignore[arg-type]
                continue
            block: SSABlock = payload  # type: ignore[assignment]
            depth = len(stack)
            self._rename_block(block, stack)
            actions.append(("pop", depth))
            for base in reversed(dom.children[block.base]):
                actions.append(("visit", self.ssa.block_of(base)))
        # propagate ¬downsafe backwards through Φ operands without real use
        worklist = [p for p in self.ec.phis.values() if not p.downsafe]
        while worklist:
            phi = worklist.pop()
            for opnd in phi.operands:
                d = opnd.def_occ
                if (isinstance(d, PhiOcc) and not opnd.has_real_use
                        and d.downsafe):
                    d.downsafe = False
                    worklist.append(d)

    def _new_class(self) -> int:
        self._next_cls += 1
        return self._next_cls

    def _rename_block(self, block: SSABlock,
                      stack: List[_StackEntry]) -> None:
        phi = self.ec.phis.get(block)
        if phi is not None:
            phi.cls = self._new_class()
            stack.append(_StackEntry(phi, None, phi.cls))
        for occ in self._occs_by_block.get(block, ()):
            if isinstance(occ, LeftOcc):
                self._rename_left(occ, stack)
            else:
                self._rename_real(occ, stack)  # type: ignore[arg-type]
        if isinstance(block.term, SReturn) and stack:
            top = stack[-1]
            if isinstance(top.occ, PhiOcc) and not top.used:
                top.occ.downsafe = False
        for succ in block.succs:
            succ_phi = self.ec.phis.get(succ)
            if succ_phi is not None:
                self._rename_phi_operand(block, succ, succ_phi, stack)

    def _left_versions(self, occ: LeftOcc) -> Dict[Symbol, SSAVar]:
        versions = leaf_versions(occ.stmt.addr)
        own_chi = next(c for c in occ.stmt.chis if c.is_own)
        assert own_chi.lhs is not None
        versions[own_chi.symbol] = own_chi.lhs
        return versions

    def _rename_left(self, occ: LeftOcc,
                     stack: List[_StackEntry]) -> None:
        # A store of the shape always (re)defines the expression value.
        if stack and isinstance(stack[-1].occ, PhiOcc) \
                and not stack[-1].used:
            stack[-1].occ.downsafe = False
        occ.versions = self._left_versions(occ)
        occ.cls = self._new_class()
        entry = _StackEntry(occ, occ.versions, occ.cls)
        entry.used = True  # a definition counts as a real occurrence
        stack.append(entry)

    def _rename_real(self, occ: RealOcc,
                     stack: List[_StackEntry]) -> None:
        occ.versions = leaf_versions(occ.node)
        if stack:
            top = stack[-1]
            res = self._match(top, occ.versions)
            if res.ok:
                occ.cls = top.cls
                occ.speculative = res.speculative
                occ.injuries = list(res.injuries)
                top.used = True
                if isinstance(top.occ, PhiOcc):
                    top.occ.used = True
                return
            if isinstance(top.occ, PhiOcc) and not top.used:
                top.occ.downsafe = False
        occ.cls = self._new_class()
        entry = _StackEntry(occ, occ.versions, occ.cls)
        entry.used = True
        stack.append(entry)

    def _rename_phi_operand(self, pred: SSABlock, succ: SSABlock,
                            phi: PhiOcc, stack: List[_StackEntry]) -> None:
        opnd = phi.operands[succ.pred_index(pred)]
        versions: Dict[Symbol, SSAVar] = {}
        complete = True
        for symbol in self.leaf_symbols:
            var = self.ctx.version_at_end(pred, symbol)
            if var is None:
                complete = False
                break
            versions[symbol] = var
        opnd.versions = versions if complete else None
        if not stack or not complete:
            opnd.def_occ = None
            return
        top = stack[-1]
        res = self._match(top, versions)
        if not res.ok:
            if isinstance(top.occ, PhiOcc) and not top.used:
                top.occ.downsafe = False
            opnd.def_occ = None
            return
        opnd.def_occ = top.occ
        opnd.speculative = res.speculative
        opnd.injuries = list(res.injuries)
        opnd.has_real_use = top.used

    # ---- version matching with weak-update skipping -----------------------
    def _match(self, entry: _StackEntry, versions) -> ChaseResult:
        speculative = False
        injuries: List[object] = []
        for symbol in self.leaf_symbols:
            current = versions.get(symbol)
            if current is None:
                return ChaseResult(False)
            if entry.versions is not None:
                target = entry.versions.get(symbol)
                if target is None:
                    return ChaseResult(False)
                res = self._chase(current, lambda v, t=target: v is t,
                                  symbol)
            else:
                phi_block = entry.occ.block  # type: ignore[union-attr]
                res = self._chase(
                    current,
                    lambda v, b=phi_block: self._at_or_above(v, b),
                    symbol,
                )
            if not res.ok:
                return ChaseResult(False)
            speculative |= res.speculative
            injuries.extend(res.injuries)
        return ChaseResult(True, speculative, tuple(injuries))

    def _at_or_above(self, var: SSAVar, block: SSABlock) -> bool:
        """Is ``var``'s value already current at the *start* of ``block``?"""
        if var.def_site == "entry":
            return True
        def_block = var.def_block
        if def_block is None:
            return False
        if def_block is block:
            return isinstance(var.def_site, SPhi)
        return self.ssa.dom.strictly_dominates(def_block.base, block.base)

    def _chase(self, var: SSAVar, accept: Callable[[SSAVar], bool],
               symbol: Symbol) -> ChaseResult:
        speculative = False
        injuries: List[object] = []
        v = var
        for _ in range(10_000):  # def chains are acyclic; belt and braces
            if accept(v):
                return ChaseResult(True, speculative, tuple(injuries))
            site = v.def_site
            if isinstance(site, Chi) and not site.likely \
                    and self.allow_data_speculation:
                assert site.rhs is not None
                v = site.rhs
                speculative = True
                continue
            if isinstance(site, SAssign) and site.spec_kind == "check" \
                    and site.check_source is not None \
                    and self.allow_data_speculation:
                # Appendix B: an address defined by a speculative check —
                # chase to the version the check re-validates (chk.a).
                v = site.check_source
                speculative = True
                continue
            if self._sr_iv is symbol and symbol is not None:
                delta = _injury_delta(site, symbol)
                if delta is not None:
                    injuries.append(site)
                    v = _injury_source(site)
                    continue
            return ChaseResult(False)
        return ChaseResult(False)  # pragma: no cover

    # ------------------------------------------------------------------
    # Step 4: WillBeAvailable (CanBeAvail + Later)
    # ------------------------------------------------------------------
    def will_be_available(self) -> None:
        phis = list(self.ec.phis.values())
        # Propagate "used" backwards: a Φ feeding a used Φ is used too.
        # Control speculation must never rescue a Φ whose merged value no
        # occurrence consumes — the insertions would be pure overhead and
        # may even read variables with no value yet on the inserted path.
        changed = True
        while changed:
            changed = False
            for phi in phis:
                if not phi.used:
                    continue
                for opnd in phi.operands:
                    d = opnd.def_occ
                    if isinstance(d, PhiOcc) and not d.used:
                        d.used = True
                        changed = True
        # CanBeAvail with the control-speculation escape.
        for phi in phis:
            if not phi.can_be_avail:
                continue
            if phi.downsafe:
                continue
            if any(op.is_bottom for op in phi.operands):
                if self._speculate(phi):
                    phi.speculated = True
                    self.ctx.speculated_phis += 1
                else:
                    self._reset_can_be_avail(phi)
        # Later
        for phi in phis:
            phi.later = phi.can_be_avail
        for phi in phis:
            if phi.later and any(
                (not op.is_bottom) and op.has_real_use
                for op in phi.operands
            ):
                self._reset_later(phi)

    def _reset_can_be_avail(self, phi: PhiOcc) -> None:
        phi.can_be_avail = False
        for other in self.ec.phis.values():
            for opnd in other.operands:
                if opnd.def_occ is phi and not opnd.has_real_use:
                    if other.can_be_avail and not (
                        other.downsafe or self._speculate(other)
                    ):
                        self._reset_can_be_avail(other)

    def _reset_later(self, phi: PhiOcc) -> None:
        phi.later = False
        for other in self.ec.phis.values():
            if other.later and any(
                opnd.def_occ is phi for opnd in other.operands
            ):
                self._reset_later(other)

    # ---- control-speculation profitability ----------------------------
    def _speculate(self, phi: PhiOcc) -> bool:
        if not self.ctx.control_speculation:
            return False
        if not phi.used:
            return False  # no consumer: speculation cannot pay off
        profile = self.ctx.edge_profile
        if profile is not None:
            insert_w = sum(
                profile.freq(op.pred.base)
                for op in phi.operands
                if op.is_bottom or not op.has_real_use
            )
            use_w = sum(
                profile.freq(occ.block.base)
                for occ in self.ec.real_occs
                if self.ssa.dominates(phi.block, occ.block)
            )
            return use_w > insert_w
        # No profile: classic loop-invariant speculation — the Φ sits at a
        # loop header and all missing operands flow in from outside the
        # loop (hoisting the expression into the preheader).  An operand
        # counts as missing when it is ⊥ or fed by a Φ that cannot be
        # made available (the nested-loop cascade: the outer header's Φ
        # dies, the inner header's Φ still deserves a preheader insert).
        loop = self.ctx.loops.innermost(phi.block.base)
        if loop is None:
            return False
        if loop.header is not phi.block.base:
            return False
        missing = [
            op for op in phi.operands
            if op.is_bottom
            or (isinstance(op.def_occ, PhiOcc)
                and not op.def_occ.can_be_avail
                and not op.has_real_use)
        ]
        return bool(missing) and all(
            op.pred.base not in loop.blocks for op in missing
        )


# ---- strength-reduction injury recognition --------------------------------


def _injury_delta(site: object, symbol: Symbol) -> Optional[SExprDelta]:
    """If ``site`` is an injuring def ``s = s' ± const`` of ``symbol``,
    return its delta; else None."""
    if not isinstance(site, SAssign) or not isinstance(site.lhs, SSAVar):
        return None
    if site.lhs.symbol is not symbol:
        return None
    rhs = site.rhs
    if isinstance(rhs, SBin) and rhs.op in ("+", "-"):
        if (isinstance(rhs.left, SVarUse) and rhs.left.symbol is symbol
                and isinstance(rhs.right, SConst)):
            value = rhs.right.value
            return -value if rhs.op == "-" else value
        if (rhs.op == "+" and isinstance(rhs.right, SVarUse)
                and rhs.right.symbol is symbol
                and isinstance(rhs.left, SConst)):
            return rhs.left.value
    return None


def _injury_source(site: SAssign) -> SSAVar:
    rhs = site.rhs
    assert isinstance(rhs, SBin)
    if isinstance(rhs.left, SVarUse) and rhs.left.var is not None \
            and rhs.left.symbol is site.lhs.symbol:
        return rhs.left.var
    assert isinstance(rhs.right, SVarUse) and rhs.right.var is not None
    return rhs.right.var


SExprDelta = float
