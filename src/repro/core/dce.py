"""Dead-code elimination on the SSA form (mark and sweep).

Cleans up after SSAPRE/LFTR: unused φs, unused pure assignments (including
loads — reading memory has no observable effect in this IR), and unused
induction-variable updates once linear-function test replacement removed
their last consumers.

The pass seeds liveness from side-effecting statements (stores, calls,
``print``, terminators, and assignments carrying χs) and marks backwards
through use-def edges, so a φ ↔ increment cycle with no observable
consumer dies as a whole.

Liveness is version-level for program variables and *symbol-level* for
compiler temporaries: out-of-SSA collapses a temporary's versions onto one
symbol, so any live version keeps every definition of that symbol alive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import StorageKind, Symbol
from ..ssa import (Chi, SAssign, SCall, SLoad, SPhi, SSAFunction, SSAVar,
                   SStmt, SVarUse)


class _Marker:
    def __init__(self, ssa: SSAFunction) -> None:
        self.ssa = ssa
        self.live_vars: Set[SSAVar] = set()
        self.live_temp_syms: Set[Symbol] = set()
        self.worklist: List[SSAVar] = []
        #: def index: var -> defining stmt/phi (for marking def inputs)
        self.def_of: Dict[SSAVar, object] = {}
        #: all defs per temp symbol (symbol-level liveness)
        self.temp_defs: Dict[Symbol, List[SSAVar]] = {}

    def build_def_index(self) -> None:
        for block in self.ssa.blocks:
            for phi in block.phis:
                if phi.lhs is not None:
                    self._add_def(phi.lhs, phi)
            for stmt in block.stmts:
                if isinstance(stmt, SAssign) and isinstance(stmt.lhs, SSAVar):
                    self._add_def(stmt.lhs, stmt)
                if isinstance(stmt, SCall) and isinstance(stmt.dst, SSAVar):
                    self._add_def(stmt.dst, stmt)
                for chi in stmt.chis:
                    if chi.lhs is not None:
                        self._add_def(chi.lhs, stmt)

    def _add_def(self, var: SSAVar, site: object) -> None:
        self.def_of[var] = site
        if var.symbol.kind is StorageKind.TEMP:
            self.temp_defs.setdefault(var.symbol, []).append(var)

    # ---- marking ---------------------------------------------------------
    def mark_var(self, var: Optional[SSAVar]) -> None:
        if var is None or var in self.live_vars:
            return
        self.live_vars.add(var)
        self.worklist.append(var)
        if var.symbol.kind is StorageKind.TEMP \
                and var.symbol not in self.live_temp_syms:
            self.live_temp_syms.add(var.symbol)
            for other in self.temp_defs.get(var.symbol, ()):
                self.mark_var(other)

    def mark_symbol(self, symbol: Symbol) -> None:
        if symbol.kind is StorageKind.TEMP \
                and symbol not in self.live_temp_syms:
            self.live_temp_syms.add(symbol)
            for var in self.temp_defs.get(symbol, ()):
                self.mark_var(var)

    def mark_expr(self, expr) -> None:
        for node in expr.walk():
            if isinstance(node, SVarUse):
                if node.var is not None:
                    self.mark_var(node.var)
                else:
                    self.mark_symbol(node.symbol)
            elif isinstance(node, SLoad):
                for mu in node.mus:
                    self.mark_var(mu.var)

    def mark_stmt_inputs(self, stmt: SStmt) -> None:
        for expr in stmt.exprs():
            self.mark_expr(expr)
        for mu in getattr(stmt, "mus", ()):
            self.mark_var(mu.var)
        for chi in stmt.chis:
            self.mark_var(chi.rhs)
        if isinstance(stmt, SAssign) and stmt.check_source is not None:
            self.mark_var(stmt.check_source)

    def run(self) -> None:
        self.build_def_index()
        # Seeds: side-effecting statements and terminators.
        for block in self.ssa.blocks:
            for stmt in block.stmts:
                if self._has_side_effect(stmt):
                    self.mark_stmt_inputs(stmt)
            if block.term is not None:
                for expr in block.term.exprs():
                    self.mark_expr(expr)
        # Propagate: a live var's defining statement's inputs are live.
        while self.worklist:
            var = self.worklist.pop()
            site = self.def_of.get(var)
            if site is None:
                continue
            if isinstance(site, SPhi):
                for arg in site.args:
                    self.mark_var(arg)
            else:
                self.mark_stmt_inputs(site)  # type: ignore[arg-type]

    @staticmethod
    def _has_side_effect(stmt: SStmt) -> bool:
        from ..ssa import SPrint, SStore
        from ..ssa.construct import is_memory_resident

        if isinstance(stmt, SAssign):
            if stmt.chis:
                return True
            # Defs of globals / address-taken locals are observable
            # through memory (calls, pointers): never dead.
            lhs = stmt.lhs
            symbol = lhs.symbol if isinstance(lhs, SSAVar) else lhs
            return is_memory_resident(symbol)
        if isinstance(stmt, SPhi):
            return False
        return isinstance(stmt, (SStore, SCall, SPrint))


def eliminate_dead_code(ssa: SSAFunction) -> int:
    """Remove assignments and φs whose values can never reach an
    observable effect; returns the number of removals."""
    marker = _Marker(ssa)
    marker.run()
    removed = 0

    def live(var: Optional[SSAVar]) -> bool:
        if var is None:
            return True  # unrenamed: be conservative
        if var in marker.live_vars:
            return True
        return (var.symbol.kind is StorageKind.TEMP
                and var.symbol in marker.live_temp_syms)

    for block in ssa.blocks:
        keep_phis = []
        for phi in block.phis:
            if live(phi.lhs):
                keep_phis.append(phi)
            else:
                removed += 1
        block.phis = keep_phis
        keep_stmts = []
        for stmt in block.stmts:
            dead = (
                isinstance(stmt, SAssign)
                and not _Marker._has_side_effect(stmt)
                and isinstance(stmt.lhs, SSAVar)
                and not live(stmt.lhs)
            )
            if dead:
                removed += 1
            else:
                keep_stmts.append(stmt)
        block.stmts = keep_stmts
    return removed
