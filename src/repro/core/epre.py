"""Expression PRE (and strength reduction) over arithmetic operations.

After register promotion, memory reads are temporaries, so arithmetic
expressions are trees over register values.  EPRE runs SSAPRE bottom-up
over first-order binary operations; with ``repair_injuries`` the Rename
step additionally recognizes *injuring* definitions (``i = i ± c``) of
multiplication candidates and CodeMotion inserts repairs — strength
reduction per Kennedy et al. [20], which the paper notes is the
non-speculative twin of its speculative weak updates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import PREContext
from .materialize import run_ssapre_on_class
from .occurrences import collect_expr_classes


@dataclass
class EPREStats:
    classes: int = 0
    reloads: int = 0
    insertions: int = 0
    rounds: int = 0


def eliminate_redundant_exprs(ctx: PREContext,
                              max_rounds: int = 4) -> EPREStats:
    """Run arithmetic-PRE rounds to a fixpoint (bounded)."""
    stats = EPREStats()
    for _ in range(max_rounds):
        classes = collect_expr_classes(ctx.ssa, "arith",
                                       include_stores=False)
        progressed = False
        for ec in classes:
            # Arithmetic operands are register values: data speculation
            # does not apply (nothing for the ALAT to check); control
            # speculation still does.
            mat = run_ssapre_on_class(ctx, ec,
                                      allow_data_speculation=False)
            stats.classes += 1
            stats.reloads += mat.reloads
            stats.insertions += mat.insertions
            if mat.reloads or mat.insertions:
                progressed = True
        stats.rounds += 1
        if not progressed:
            break
    return stats
