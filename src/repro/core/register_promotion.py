"""Speculative register promotion — PRE applied to loads (paper §5).

Runs SSAPRE over *load* expression classes: direct reads of
memory-resident scalars (globals, address-taken locals) and indirect
loads.  Rounds iterate bottom-up: once an inner load is promoted to a
temporary, enclosing loads whose addresses mention it become first-order
candidates in the next round (the paper's ``A[Anext][0][0]`` chains).

Data speculation is driven entirely by the ``likely`` flags on χ/µ — with
a no-speculation flagging the same code performs classical (safe) load
PRE, which is the paper's O3 baseline behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ssa import SSAFunction
from .engine import PREContext
from .materialize import run_ssapre_on_class
from .occurrences import collect_expr_classes


@dataclass
class PromotionStats:
    """What register promotion did to one function."""

    classes: int = 0
    reloads: int = 0
    checks: int = 0
    insertions: int = 0
    speculated_phis: int = 0
    rounds: int = 0


def promote_loads(ctx: PREContext, max_rounds: int = 4,
                  store_forwarding: bool = True,
                  allow_data_speculation: bool = True) -> PromotionStats:
    """Run load-PRE rounds to a fixpoint (bounded by ``max_rounds``)."""
    stats = PromotionStats()
    for _ in range(max_rounds):
        classes = collect_expr_classes(ctx.ssa, "load",
                                       include_stores=store_forwarding)
        progressed = False
        for ec in classes:
            mat = run_ssapre_on_class(ctx, ec, allow_data_speculation)
            stats.classes += 1
            stats.reloads += mat.reloads
            stats.checks += mat.checks_emitted
            stats.insertions += mat.insertions
            if mat.reloads or mat.insertions:
                progressed = True
        stats.rounds += 1
        if not progressed:
            break
    stats.speculated_phis = ctx.speculated_phis
    return stats
