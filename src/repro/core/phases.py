"""The SSAPRE optimization stack as a typed *phase* registry.

:func:`repro.core.optimize_function` used to be a monolith hard-coding
the sequence register promotion → expression PRE (with strength
reduction) → LFTR → DCE.  This module is the decomposed form: each
phase is one :class:`Phase` record — a name, a gate deciding whether a
:class:`~repro.core.config.SpecConfig` enables it, and a runner over
the shared :class:`~repro.core.engine.PREContext`.  The pipeline's pass
manager (:mod:`repro.pipeline.passes`) wraps every phase as a
registered ``FunctionPass``; ``optimize_function`` itself is now a thin
loop over :func:`phases_for`.

All phases of one function share **one** ``PREContext`` — strength
reduction's injury records feed LFTR through ``ctx.sr_records``, and
the version cache is shared — so splitting the monolith changes neither
the order nor the results of the optimizations.

Strength reduction is not an independently sequenced transformation: it
is the PRE engine's injury-repair mode, consulted *during* promotion
and expression PRE.  Its phase therefore runs first and merely arms
``ctx.repair_injuries``; dropping the phase (as the fallback ladder's
``no-lftr`` rung does) disarms repair exactly like the old
``strength_reduction=False`` configuration flip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING

from .config import SpecConfig
from .dce import eliminate_dead_code
from .engine import PREContext
from .epre import eliminate_redundant_exprs
from .lftr import replace_linear_tests
from .register_promotion import promote_loads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import OptStats


@dataclass(frozen=True)
class Phase:
    """One SSAPRE optimization phase.

    Attributes:
        name: the registered pass name (kebab-case, e.g.
            ``"register-promotion"``).
        flag: the :class:`SpecConfig` field gating the phase — the pass
            manager uses it to keep a truncated pipeline and its rung
            config consistent.
        run: ``run(ctx, config, stats)`` executes the phase over the
            shared :class:`PREContext`, recording into ``stats``.
    """

    name: str
    flag: str
    run: Callable[[PREContext, SpecConfig, "OptStats"], None]

    def enabled(self, config: SpecConfig) -> bool:
        return bool(getattr(config, self.flag))


def _arm_strength_reduction(ctx: PREContext, config: SpecConfig,
                            stats: "OptStats") -> None:
    ctx.repair_injuries = True


def _run_promotion(ctx: PREContext, config: SpecConfig,
                   stats: "OptStats") -> None:
    stats.promotion = promote_loads(
        ctx,
        max_rounds=config.max_rounds,
        store_forwarding=config.store_forwarding,
        allow_data_speculation=config.data_speculation,
    )


def _run_epre(ctx: PREContext, config: SpecConfig,
              stats: "OptStats") -> None:
    stats.epre = eliminate_redundant_exprs(ctx, max_rounds=config.max_rounds)


def _run_lftr(ctx: PREContext, config: SpecConfig,
              stats: "OptStats") -> None:
    stats.lftr_replacements = replace_linear_tests(ctx)


def _run_dce(ctx: PREContext, config: SpecConfig,
             stats: "OptStats") -> None:
    stats.dce_removed = eliminate_dead_code(ctx.ssa)


#: The full stack, in execution order.
PHASES = (
    Phase("strength-reduction", "strength_reduction",
          _arm_strength_reduction),
    Phase("register-promotion", "register_promotion", _run_promotion),
    Phase("expression-pre", "expression_pre", _run_epre),
    Phase("lftr", "lftr", _run_lftr),
    Phase("dce", "dce", _run_dce),
)

PHASES_BY_NAME = {phase.name: phase for phase in PHASES}


def phases_for(config: SpecConfig) -> List[Phase]:
    """The phases ``config`` enables, in execution order."""
    return [phase for phase in PHASES if phase.enabled(config)]


def make_context(ssa, config: SpecConfig,
                 edge_profile=None) -> PREContext:
    """The shared per-function :class:`PREContext`, exactly as the old
    monolith constructed it (injury repair starts disarmed; the
    ``strength-reduction`` phase arms it before any phase reads it)."""
    return PREContext(
        ssa,
        control_speculation=config.control_speculation,
        edge_profile=edge_profile if config.use_edge_profile else None,
        repair_injuries=False,
        emit_checks=config.emit_checks,
    )
