"""Recovery-shaped workloads (misspeculation stress, docs/recovery.md).

The eight SPEC2000-shaped programs in :mod:`.programs` exercise *data*
speculation — the ALAT, ``ld.a``/``ld.c`` — but their loads are never
guarded by a hot branch, so the compiler has no reason to emit a single
control-speculative ``ld.s``.  These two additions reproduce the other
half of the paper's Figure 1: bounds-guarded table lookups whose loads
hoist above the guard as ``ld.s`` + ``chk.s``.  Out-of-range keys make
the hoisted load read past its allocation, so a clean (uninjected) run
already takes genuine NaT deferrals and ``chk.s`` recoveries; the
fault-injection campaign then piles spurious deferrals, ALAT evictions
and cache flushes on top.

Named after the two SPEC2000 integer benchmarks whose hot loops have
exactly this shape: 197.parser's bounds-checked dictionary lookup and
186.crafty's attack-table probes.
"""

from __future__ import annotations

from .base import Workload, register

# ---------------------------------------------------------------------------
# parser — 197.parser: guarded dictionary lookup
# ---------------------------------------------------------------------------

PARSER_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 1103 + 12849) % 65536;
  return seed % bound;
}

int lookup(int *dict, int ndict, int key, int reps) {
  int i; int hits; int v;
  hits = 0;
  for (i = 0; i < reps; i = i + 1) {
    if (key < ndict) {
      v = dict[key];
      hits = hits + v + i;
    }
  }
  return hits;
}

void main() {
  int ndict; int nwords; int reps; int guard;
  int *dict; int w; int key; int total;
  ndict = input(); nwords = input(); reps = input(); guard = input();
  seed = 7;
  dict = alloc(ndict);
  for (w = 0; w < ndict; w = w + 1) { dict[w] = rnd(97); }
  if (guard < 0) { total = lookup(dict, dict[0], 0, 1); }
  total = 0;
  for (w = 0; w < nwords; w = w + 1) {
    key = rnd(ndict + ndict / 4);
    total = (total + lookup(dict, ndict, key, reps)) % 1000003;
  }
  print(total);
}
"""

register(Workload(
    name="parser",
    spec_name="197.parser",
    description="bounds-guarded dictionary lookup: the guarded "
                "dict[key] hoists above the branch as ld.s + chk.s; "
                "~1 in 5 keys is out of range, so the speculative load "
                "reads past the allocation and defers a real NaT that "
                "the check recovers",
    source=PARSER_SOURCE,
    train_inputs=[64, 40, 6, 0],
    ref_inputs=[64, 300, 10, 0],
    expectation="control speculation: deferred faults and chk.s "
                "recoveries on the clean run, all benign",
))

# ---------------------------------------------------------------------------
# crafty — 186.crafty: attack-table probes across board updates
# ---------------------------------------------------------------------------

CRAFTY_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 1103 + 12849) % 65536;
  return seed % bound;
}

int probe(int *board, int *attack, int *bonus, int n, int sq, int depth) {
  int d; int score; int a; int b; int cell;
  score = 0;
  for (d = 0; d < depth; d = d + 1) {
    if (sq < n) {
      a = attack[sq];
      b = bonus[sq];
      cell = d - (d / n) * n;
      board[cell] = board[cell] + 1;
      score = score + a + b + board[cell];
    }
  }
  return score;
}

void main() {
  int n; int probes; int depth; int guard;
  int *board; int *attack; int *bonus; int p; int sq; int total;
  n = input(); probes = input(); depth = input(); guard = input();
  seed = 29;
  board = alloc(n); attack = alloc(n); bonus = alloc(n);
  for (p = 0; p < n; p = p + 1) {
    board[p] = 0;
    attack[p] = rnd(11);
    bonus[p] = rnd(5);
  }
  if (guard < 0) { total = probe(attack, attack, bonus, n, 0, 1); }
  total = 0;
  for (p = 0; p < probes; p = p + 1) {
    sq = rnd(n + n / 8);
    total = (total + probe(board, attack, bonus, n, sq, depth)) % 1000003;
  }
  print(total);
}
"""

register(Workload(
    name="crafty",
    spec_name="186.crafty",
    description="bounds-guarded attack-table probes across board[] "
                "updates: attack[sq] and bonus[sq] hoist above the "
                "guard as advanced loads, so out-of-range probes defer "
                "real NaTs while the board[] stores keep the ALAT "
                "busy",
    source=CRAFTY_SOURCE,
    train_inputs=[32, 30, 8, 0],
    ref_inputs=[32, 200, 12, 0],
    expectation="mixed control + data speculation; recovery on "
                "out-of-range probes",
))
