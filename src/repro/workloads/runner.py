"""Run workloads through the pipeline and compare configurations.

The machine configuration used for all workload measurements is fixed
here so every figure's harness measures the same simulated hardware:
Itanium-flavoured latencies with caches scaled down to the synthetic
working sets (so mcf misses and equake mostly hits, as on real SPEC).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import SpecConfig
from ..pipeline import Comparison, RunResult, compile_and_run
from ..target import ALAT, DataCache
from .base import Workload, get_workload

#: machine parameters shared by every workload measurement
MACHINE_GEOMETRY = dict(
    issue_width=4,
    mem_ports=2,
    branch_penalty=1,
    call_overhead=2,
)


def _machine_kwargs() -> dict:
    return dict(
        MACHINE_GEOMETRY,
        alat=ALAT(entries=32, ways=2),
        cache=DataCache(l1_lines=128, l2_lines=1024, ways=4,
                        line_cells=8, l1_latency=2, l2_latency=9,
                        mem_latency=60),
    )


def run_workload(workload: Workload, config: Optional[SpecConfig] = None,
                 check_output: bool = True,
                 machine_overrides: Optional[dict] = None) -> RunResult:
    """Compile and simulate one workload under one configuration."""
    kwargs = _machine_kwargs()
    if machine_overrides:
        kwargs.update(machine_overrides)
    return compile_and_run(
        workload.source,
        config or SpecConfig.base(),
        train_inputs=workload.train_inputs,
        ref_inputs=workload.ref_inputs,
        check_output=check_output,
        machine_kwargs=kwargs,
    )


def compare_workload(name: str, spec_config: Optional[SpecConfig] = None,
                     base_config: Optional[SpecConfig] = None) -> Comparison:
    """Base vs. speculative run of one workload (a Figure 10/11 row)."""
    workload = get_workload(name)
    base = run_workload(workload, base_config or SpecConfig.base())
    spec = run_workload(workload, spec_config or SpecConfig.profile())
    return Comparison(name, base, spec)
