"""Run workloads through the pipeline and compare configurations.

The machine configuration used for all workload measurements is fixed
here so every figure's harness measures the same simulated hardware:
Itanium-flavoured latencies with caches scaled down to the synthetic
working sets (so mcf misses and equake mostly hits, as on real SPEC).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import SpecConfig
from ..pipeline import Comparison, RunResult, compile_and_run
from ..target import ALAT, DataCache
from .base import Workload, get_workload

#: machine parameters shared by every workload measurement
MACHINE_GEOMETRY = dict(
    issue_width=4,
    mem_ports=2,
    branch_penalty=1,
    call_overhead=2,
)


def machine_kwargs(**overrides) -> dict:
    """The standard workload machine (fresh ALAT + cache per call),
    with optional geometry overrides — the width-sweep ablation uses
    this to vary ``issue_width``/``mem_ports`` while keeping the rest
    of the machine fixed."""
    kwargs = dict(
        MACHINE_GEOMETRY,
        alat=ALAT(entries=32, ways=2),
        cache=DataCache(l1_lines=128, l2_lines=1024, ways=4,
                        line_cells=8, l1_latency=2, l2_latency=9,
                        mem_latency=60),
    )
    kwargs.update(overrides)
    return kwargs


_machine_kwargs = machine_kwargs        # backwards-compatible alias


def run_workload(workload: Workload, config: Optional[SpecConfig] = None,
                 check_output: bool = True,
                 machine_overrides: Optional[dict] = None,
                 jobs: int = 1,
                 engine: str = "predecode") -> RunResult:
    """Compile and simulate one workload under one configuration.

    ``engine`` selects the simulator dispatch implementation
    (:data:`repro.target.ENGINES`); all engines produce identical
    output and architectural counters, so figures are engine-agnostic.
    """
    kwargs = machine_kwargs(**{"engine": engine,
                               **(machine_overrides or {})})
    return compile_and_run(
        workload.source,
        config or SpecConfig.base(),
        train_inputs=workload.train_inputs,
        ref_inputs=workload.ref_inputs,
        check_output=check_output,
        machine_kwargs=kwargs,
        jobs=jobs,
    )


def compare_workload(name: str, spec_config: Optional[SpecConfig] = None,
                     base_config: Optional[SpecConfig] = None,
                     engine: str = "predecode") -> Comparison:
    """Base vs. speculative run of one workload (a Figure 10/11 row)."""
    workload = get_workload(name)
    base = run_workload(workload, base_config or SpecConfig.base(),
                        engine=engine)
    spec = run_workload(workload, spec_config or SpecConfig.profile(),
                        engine=engine)
    return Comparison(name, base, spec)
