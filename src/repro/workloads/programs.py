"""The eight SPEC2000-shaped workload programs (paper §5.2).

Each program is built around the reference pattern that gives (or denies)
its namesake speculative-register-promotion opportunities.  Two common
idioms:

* **static may-aliasing** — kernels receive their arrays as parameters and
  ``main`` contains a *guarded aliased call* (``if (guard < 0)``, with
  ``guard`` read from the input stream and always non-negative) so the
  flow-insensitive points-to analysis must merge the parameter classes
  while the profile sees no (or rare) dynamic aliasing;
* **train/ref inputs** — profiles are collected with ``train_inputs``,
  measurements run with ``ref_inputs``; gzip/bzip2 use this to make the
  ref input collide where the train input never did (mis-speculation).
"""

from __future__ import annotations

from .base import Workload, register

# ---------------------------------------------------------------------------
# equake — 183.equake's smvp (the paper's Figure 9, flattened to 1-D)
# ---------------------------------------------------------------------------

EQUAKE_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 1103 + 12849) % 65536;
  return seed % bound;
}

void smvp(int nodes, double *A, int *Acol, int *Aindex,
          double *v, double *w) {
  int i; int Anext; int Alast; int col;
  double sum0; double sum1; double sum2;
  for (i = 0; i < nodes; i = i + 1) {
    Anext = Aindex[i];
    Alast = Aindex[i + 1];
    sum0 = 0.0; sum1 = 0.0; sum2 = 0.0;
    while (Anext < Alast) {
      col = Acol[Anext];
      sum0 = sum0 + A[Anext * 3 + 0] * v[col * 3 + 0];
      sum1 = sum1 + A[Anext * 3 + 1] * v[col * 3 + 1];
      sum2 = sum2 + A[Anext * 3 + 2] * v[col * 3 + 2];
      w[col * 3 + 0] = w[col * 3 + 0] + A[Anext * 3 + 0] * v[i * 3 + 0];
      w[col * 3 + 1] = w[col * 3 + 1] + A[Anext * 3 + 1] * v[i * 3 + 1];
      w[col * 3 + 2] = w[col * 3 + 2] + A[Anext * 3 + 2] * v[i * 3 + 2];
      Anext = Anext + 1;
    }
    w[i * 3 + 0] = w[i * 3 + 0] + sum0;
    w[i * 3 + 1] = w[i * 3 + 1] + sum1;
    w[i * 3 + 2] = w[i * 3 + 2] + sum2;
  }
}

void time_step(double *v, double *w, int cells, double dt) {
  int i;
  for (i = 0; i < cells; i = i + 1) {
    v[i] = v[i] * 0.875 + w[i] * dt;
    w[i] = w[i] * 0.5;
  }
}

void main() {
  int nodes; int deg; int iters; int guard;
  int nnz; int i; int k; int e;
  double *A; int *Acol; int *Aindex; double *v; double *w;
  double check;
  nodes = input(); deg = input(); iters = input(); guard = input();
  seed = 42;
  nnz = nodes * deg;
  A = alloc(nnz * 3); Acol = alloc(nnz); Aindex = alloc(nodes + 1);
  v = alloc(nodes * 3); w = alloc(nodes * 3);
  for (e = 0; e < nnz; e = e + 1) {
    Acol[e] = rnd(nodes);
    A[e * 3 + 0] = 0.5 + rnd(100) * 0.01;
    A[e * 3 + 1] = 0.25 + rnd(100) * 0.01;
    A[e * 3 + 2] = 0.125 + rnd(100) * 0.01;
  }
  for (i = 0; i <= nodes; i = i + 1) { Aindex[i] = i * deg; }
  for (i = 0; i < nodes * 3; i = i + 1) {
    v[i] = 1.0 + (i % 7) * 0.125;
    w[i] = 0.0;
  }
  if (guard < 0) { smvp(nodes, A, Acol, Aindex, w, w); }
  for (k = 0; k < iters; k = k + 1) {
    smvp(nodes, A, Acol, Aindex, v, w);
    time_step(v, w, nodes * 3, 0.01);
  }
  check = 0.0;
  for (i = 0; i < nodes * 3; i = i + 1) { check = check + w[i] + v[i]; }
  print(check);
}
"""

register(Workload(
    name="equake",
    spec_name="183.equake",
    description="sparse matrix-vector product (the paper's smvp kernel): "
                "FP loads of A[][][] and v[][] may-alias the w[][] "
                "accumulator stores but never collide at runtime",
    source=EQUAKE_SOURCE,
    train_inputs=[12, 3, 1, 0],
    ref_inputs=[20, 4, 3, 0],
    expectation="largest load reduction of the FP codes; §5.1 case study",
))

# ---------------------------------------------------------------------------
# art — 179.art: neural-net layer, weight/input loads across output stores
# ---------------------------------------------------------------------------

ART_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 2411 + 17) % 65536;
  return seed % bound;
}

void f1_layer(double *w, double *in, double *out, int nj, int ni) {
  int i; int j;
  for (j = 0; j < nj; j = j + 1) {
    for (i = 0; i < ni; i = i + 1) {
      out[j * 2 + 0] = out[j * 2 + 0] + w[j * ni + i] * in[i];
      out[j * 2 + 1] = out[j * 2 + 1] + w[j * ni + i] * in[i] * 0.5;
    }
  }
}

int match(double *out, int nj) {
  int j; int winner;
  double best;
  winner = 0;
  best = out[0];
  for (j = 1; j < nj; j = j + 1) {
    if (out[j * 2] > best) {
      best = out[j * 2];
      winner = j;
    }
  }
  return winner;
}

void main() {
  int nj; int ni; int rounds; int guard; int i; int r; int winner;
  double *w; double *in; double *out;
  double check;
  nj = input(); ni = input(); rounds = input(); guard = input();
  seed = 7;
  w = alloc(nj * ni); in = alloc(ni); out = alloc(nj * 2);
  for (i = 0; i < nj * ni; i = i + 1) { w[i] = 0.01 * (1 + rnd(50)); }
  for (i = 0; i < ni; i = i + 1) { in[i] = 0.02 * (1 + rnd(25)); }
  for (i = 0; i < nj * 2; i = i + 1) { out[i] = 0.0; }
  if (guard < 0) { f1_layer(out, out, out, nj, ni); }
  winner = 0;
  for (r = 0; r < rounds; r = r + 1) {
    f1_layer(w, in, out, nj, ni);
    winner = winner + match(out, nj);
    in[winner % ni] = in[winner % ni] * 0.96875;
  }
  check = 0.0;
  for (i = 0; i < nj * 2; i = i + 1) { check = check + out[i]; }
  print(check + winner);
}
"""

register(Workload(
    name="art",
    spec_name="179.art",
    description="neural-net F1 layer: weight and input loads repeated "
                "across output-neuron accumulator stores",
    source=ART_SOURCE,
    train_inputs=[6, 8, 1, 0],
    ref_inputs=[10, 12, 3, 0],
    expectation="~10% load reduction band; FP gains visible in time",
))

# ---------------------------------------------------------------------------
# ammp — 188.ammp: pairwise force kernel, position loads across force stores
# ---------------------------------------------------------------------------

AMMP_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 3019 + 101) % 65536;
  return seed % bound;
}

void forces(double *x, double *f, int *nb, int natoms, int deg) {
  int i; int k; int j;
  double dx; double dy; double e;
  e = 0.0;
  for (i = 0; i < natoms; i = i + 1) {
    for (k = 0; k < deg; k = k + 1) {
      j = nb[i * deg + k];
      dx = x[i * 2 + 0] - x[j * 2 + 0];
      dy = x[i * 2 + 1] - x[j * 2 + 1];
      f[i * 2 + 0] = f[i * 2 + 0] + dx * 0.5;
      f[j * 2 + 0] = f[j * 2 + 0] - dx * 0.5;
      f[i * 2 + 1] = f[i * 2 + 1] + dy * 0.5;
      f[j * 2 + 1] = f[j * 2 + 1] - dy * 0.5;
      e = e + x[i * 2 + 0] * 0.125 + x[j * 2 + 1] * 0.25;
    }
  }
  f[0] = f[0] + e * 0.001;
}

void main() {
  int natoms; int deg; int steps; int guard; int i; int s;
  double *x; double *f; int *nb;
  double check;
  natoms = input(); deg = input(); steps = input(); guard = input();
  seed = 11;
  x = alloc(natoms * 2); f = alloc(natoms * 2); nb = alloc(natoms * deg);
  for (i = 0; i < natoms * 2; i = i + 1) {
    x[i] = 0.1 * (1 + rnd(30));
    f[i] = 0.0;
  }
  for (i = 0; i < natoms * deg; i = i + 1) { nb[i] = rnd(natoms); }
  if (guard < 0) { forces(f, f, nb, natoms, deg); }
  for (s = 0; s < steps; s = s + 1) { forces(x, f, nb, natoms, deg); }
  check = 0.0;
  for (i = 0; i < natoms * 2; i = i + 1) { check = check + f[i]; }
  print(check);
}
"""

register(Workload(
    name="ammp",
    spec_name="188.ammp",
    description="pairwise force kernel: atom-position loads repeated "
                "across force-accumulator stores",
    source=AMMP_SOURCE,
    train_inputs=[10, 3, 1, 0],
    ref_inputs=[16, 4, 3, 0],
    expectation="solid FP load reduction (5-14% band)",
))

# ---------------------------------------------------------------------------
# mcf — 181.mcf: reduced-cost sweep over a large arc arena (pointer chasing)
# ---------------------------------------------------------------------------

MCF_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 4021 + 7) % 65536;
  return seed % bound;
}

int sweep(int *tail, int *head, int *cost, int *flow, int *potential,
          int m) {
  int a; int t; int h; int red; int changed;
  changed = 0;
  for (a = 0; a < m; a = a + 1) {
    t = tail[a];
    h = head[a];
    red = cost[a] + potential[t] - potential[h];
    if (red < 0) {
      flow[a] = flow[a] + 1;
      red = cost[a] + potential[t] - potential[h];
      changed = changed + red;
    }
  }
  return changed;
}

void update_potentials(int *potential, int *flow, int *tail, int n,
                       int m) {
  int a; int t;
  for (a = 0; a < m; a = a + 1) {
    if (flow[a] > 0) {
      t = tail[a];
      potential[t] = potential[t] + flow[a] % 3 - 1;
    }
  }
}

void main() {
  int n; int m; int sweeps; int guard; int i; int s; int total;
  int *tail; int *head; int *cost; int *flow; int *potential;
  n = input(); m = input(); sweeps = input(); guard = input();
  seed = 5;
  tail = alloc(m); head = alloc(m); cost = alloc(m); flow = alloc(m);
  potential = alloc(n);
  for (i = 0; i < m; i = i + 1) {
    tail[i] = rnd(n);
    head[i] = rnd(n);
    cost[i] = rnd(41) - 20;
    flow[i] = 0;
  }
  for (i = 0; i < n; i = i + 1) { potential[i] = rnd(19) - 9; }
  if (guard < 0) { total = sweep(potential, potential, cost, potential,
                                 potential, m); }
  total = 0;
  for (s = 0; s < sweeps; s = s + 1) {
    total = total + sweep(tail, head, cost, flow, potential, m);
    update_potentials(potential, flow, tail, n, m);
  }
  for (i = 0; i < m; i = i + 1) { total = total + flow[i]; }
  print(total);
}
"""

register(Workload(
    name="mcf",
    spec_name="181.mcf",
    description="network-simplex-like reduced-cost sweep: potential[] "
                "loads repeated across flow[] stores, scattered over an "
                "arena too big for L1 (memory-bound)",
    source=MCF_SOURCE,
    train_inputs=[512, 700, 1, 0],
    ref_inputs=[4096, 2000, 2, 0],
    expectation="clear load reduction but small speedup (cache-miss "
                "bound, as in the paper's mcf discussion)",
))

# ---------------------------------------------------------------------------
# twolf — 300.twolf: placement cost updates, position reloads across stores
# ---------------------------------------------------------------------------

TWOLF_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 5237 + 31) % 65536;
  return seed % bound;
}

int place(int *pos, int *cost, int *order, int n, int moves) {
  int k; int i; int total;
  total = 0;
  for (k = 0; k < moves; k = k + 1) {
    i = order[k % n];
    cost[i] = cost[i] + pos[i] / 2;
    total = total + pos[i];
    cost[i] = cost[i] - pos[i] / 4;
    total = total + pos[i] % 16;
  }
  return total;
}

void main() {
  int n; int moves; int guard; int i; int total;
  int *pos; int *cost; int *order;
  n = input(); moves = input(); guard = input();
  seed = 23;
  pos = alloc(n); cost = alloc(n); order = alloc(n);
  for (i = 0; i < n; i = i + 1) {
    pos[i] = rnd(1000);
    cost[i] = 0;
    order[i] = rnd(n);
  }
  if (guard < 0) { total = place(cost, cost, order, n, moves); }
  total = place(pos, cost, order, n, moves);
  for (i = 0; i < n; i = i + 1) { total = total + cost[i]; }
  print(total);
}
"""

register(Workload(
    name="twolf",
    spec_name="300.twolf",
    description="placement cost loop: cell-position loads repeated "
                "across cost-table stores",
    source=TWOLF_SOURCE,
    train_inputs=[64, 300, 0],
    ref_inputs=[200, 2000, 0],
    expectation="integer code with 5-14% load reduction",
))

# ---------------------------------------------------------------------------
# vpr — 175.vpr: routing cost lookups across occasional path stores
# ---------------------------------------------------------------------------

VPR_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 6151 + 13) % 65536;
  return seed % bound;
}

int route(int *grid, int *ea, int *eb, int *path, int edges, int iters) {
  int it; int e; int acc; int g;
  acc = 0;
  for (it = 0; it < iters; it = it + 1) {
    for (e = 0; e < edges; e = e + 1) {
      g = ea[e];
      acc = acc + grid[g];
      path[e] = acc % 255;
      acc = acc + grid[g] / 2 + grid[eb[e]];
    }
    grid[it % 16] = acc % 97;
  }
  return acc;
}

void main() {
  int cells; int edges; int iters; int guard; int i; int acc;
  int *grid; int *ea; int *eb; int *path;
  cells = input(); edges = input(); iters = input(); guard = input();
  seed = 17;
  grid = alloc(cells); ea = alloc(edges); eb = alloc(edges);
  path = alloc(edges);
  for (i = 0; i < cells; i = i + 1) { grid[i] = rnd(50); }
  for (i = 0; i < edges; i = i + 1) {
    ea[i] = 16 + rnd(cells - 16);
    eb[i] = 16 + rnd(cells - 16);
    path[i] = 0;
  }
  if (guard < 0) { acc = route(path, ea, eb, path, edges, iters); }
  acc = route(grid, ea, eb, path, edges, iters);
  for (i = 0; i < edges; i = i + 1) { acc = acc + path[i]; }
  print(acc);
}
"""

register(Workload(
    name="vpr",
    spec_name="175.vpr",
    description="routing inner loop: grid cost loads repeated across "
                "path stores; grid updates stay clear of routed cells",
    source=VPR_SOURCE,
    train_inputs=[80, 100, 2, 0],
    ref_inputs=[160, 400, 4, 0],
    expectation="moderate integer load reduction",
))

# ---------------------------------------------------------------------------
# gzip — 164.gzip: LZ hash-head reloads; ref input occasionally collides
# ---------------------------------------------------------------------------

GZIP_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 7433 + 3) % 65536;
  return seed % bound;
}

int deflate(int *window, int *head, int wsize, int hsize,
            int rounds, int stride, int off, int span) {
  int r; int i; int s; int best; int j;
  s = 0;
  for (r = 0; r < rounds; r = r + 1) {
    best = head[0];
    for (i = 0; i < wsize; i = i + 1) {
      s = s + window[i];
      window[i] = (window[i] + r) % 251;
    }
    j = off + (r * stride) % span;
    head[j] = s % 251;
    best = best + head[0];
    s = (s + best) % 100003;
  }
  return s;
}

void main() {
  int wsize; int hsize; int rounds; int stride; int off; int span;
  int guard; int i; int s;
  int *window; int *head;
  wsize = input(); hsize = input(); rounds = input();
  stride = input(); off = input(); span = input(); guard = input();
  seed = 3;
  window = alloc(wsize); head = alloc(hsize);
  for (i = 0; i < wsize; i = i + 1) { window[i] = rnd(251); }
  for (i = 0; i < hsize; i = i + 1) { head[i] = rnd(251); }
  if (guard < 0) { s = deflate(head, head, wsize, hsize, rounds,
                               stride, off, span); }
  s = deflate(window, head, wsize, hsize, rounds, stride, off, span);
  print(s);
}
"""

register(Workload(
    name="gzip",
    spec_name="164.gzip",
    description="LZ-style loop: bulk window scanning (no speculation "
                "opportunity) plus a hash-head reload across an "
                "index-dependent store — the ref input hits head[0] "
                "periodically, failing the check",
    source=GZIP_SOURCE,
    # train: stores land in head[8..56): never the promoted head[0]
    train_inputs=[120, 64, 20, 4, 8, 48, 0],
    # ref: stores land in head[0..48): head[0] hit every 12th round
    ref_inputs=[200, 64, 60, 4, 0, 48, 0],
    expectation="negligible check count but a visible mis-speculation "
                "ratio (the paper's gzip anomaly)",
))

# ---------------------------------------------------------------------------
# bzip2 — 256.bzip2: bucket counting with block reloads across count stores
# ---------------------------------------------------------------------------

BZIP2_SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 8513 + 29) % 65536;
  return seed % bound;
}

int sort_pass(int *block, int *count, int n, int nbuckets,
              int stride, int k) {
  int i; int c; int chk;
  chk = 0;
  for (i = 0; i < n; i = i + 1) {
    c = block[i] % nbuckets;
    count[c] = count[c] + 1;
    if ((i % stride) == k) { block[i + 0] = c % 7 + 1; }
    chk = chk + block[i];
  }
  return chk;
}

void main() {
  int n; int nbuckets; int passes; int stride; int k; int guard;
  int i; int p; int chk;
  int *block; int *count;
  n = input(); nbuckets = input(); passes = input(); stride = input();
  k = input(); guard = input();
  seed = 13;
  block = alloc(n); count = alloc(nbuckets);
  for (i = 0; i < n; i = i + 1) { block[i] = rnd(1000); }
  for (i = 0; i < nbuckets; i = i + 1) { count[i] = 0; }
  if (guard < 0) { chk = sort_pass(count, count, n, nbuckets, stride, k); }
  chk = 0;
  for (p = 0; p < passes; p = p + 1) {
    chk = (chk + sort_pass(block, count, n, nbuckets, stride, k))
          % 1000003;
  }
  for (i = 0; i < nbuckets; i = i + 1) { chk = chk + count[i]; }
  print(chk);
}
"""

register(Workload(
    name="bzip2",
    spec_name="256.bzip2",
    description="bucket-count pass: block[] reloads across count[] "
                "stores; the ref input triggers a rare in-block store "
                "(self-aliasing) the train input never exercised",
    source=BZIP2_SOURCE,
    # train: k >= stride, so the in-block store never fires
    train_inputs=[150, 16, 1, 50, 60, 0],
    # ref: the in-block store fires every 50th element — occasionally
    # clobbering the promoted block[i] between its ld.a and ld.c
    ref_inputs=[400, 16, 3, 50, 3, 0],
    expectation="modest load reduction, small non-zero mis-speculation",
))
