"""SPEC2000-shaped workloads and the benchmark runner."""

from .ablation import superblock_ablation
from .base import (Workload, all_workloads, get_workload,
                   recovery_workloads, register)
from .runner import compare_workload, machine_kwargs, run_workload

__all__ = [
    "Workload", "all_workloads", "compare_workload", "get_workload",
    "machine_kwargs", "recovery_workloads", "register", "run_workload",
    "superblock_ablation",
]
