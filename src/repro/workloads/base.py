"""Workload definitions.

A workload is a mini-C program shaped like one of the paper's eight
SPEC2000 benchmarks: it reproduces the *reference pattern* that makes
speculative register promotion help (or not) on that benchmark — aliased
FP array kernels for equake/art/ammp, pointer chasing for mcf, field
reloads for twolf/vpr, low-opportunity high-collision windows for
gzip/bzip2.

``train_inputs`` / ``ref_inputs`` feed the program's ``input()`` calls:
the alias/edge profiles are always collected on the train input and the
measurements taken on the ref input, reproducing the paper's train/ref
methodology (and its input-sensitivity caveat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Workload:
    """One SPEC2000-shaped benchmark program."""

    name: str
    spec_name: str
    description: str
    source: str
    train_inputs: Sequence[float] = ()
    ref_inputs: Sequence[float] = ()
    #: expected qualitative behaviour, recorded in EXPERIMENTS.md
    expectation: str = ""


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


#: the paper's Figure 10 benchmark set, in figure order
_FIG10 = ("gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp")


def all_workloads() -> List[Workload]:
    """The paper's eight Figure-10 workloads, in figure order.  (The
    misspeculation-stress additions live in :func:`recovery_workloads`
    so the benchmark tables keep the paper's exact shape.)"""
    _ensure_loaded()
    return [_REGISTRY[n] for n in _FIG10 if n in _REGISTRY]


def recovery_workloads() -> List[Workload]:
    """The recovery-shaped stress workloads (:mod:`.recovery`): every
    registered workload outside the Figure-10 set."""
    _ensure_loaded()
    return [w for n, w in sorted(_REGISTRY.items()) if n not in _FIG10]


def _ensure_loaded() -> None:
    from . import programs, recovery  # noqa: F401  (register on import)
