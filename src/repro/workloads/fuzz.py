"""Random mini-C program generator for differential testing.

Generates closed, terminating, memory-safe programs that still exercise
the constructs the speculative framework cares about: aliased pointers,
arrays, heap objects, loops, calls and mixed int/float arithmetic.  Every
generated program:

* terminates (loops are counted ``for`` loops with literal bounds);
* never divides by zero (denominators are non-zero literals);
* never accesses memory out of bounds (indices are loop counters modulo
  the object size, or literals);
* prints enough values that optimizer bugs surface as output diffs.

Used by the property-based integration tests: for random programs and
every safe configuration, the simulated optimized binary must print what
the reference interpreter prints.
"""

from __future__ import annotations

import random
from typing import List, Optional


class _Scope:
    def __init__(self) -> None:
        self.int_vars: List[str] = []
        self.float_vars: List[str] = []
        self.arrays: List[tuple] = []      # (name, size, is_float)
        self.pointers: List[tuple] = []    # (name, is_float)
        self.loop_vars: List[str] = []


class ProgramGenerator:
    """Deterministic random program builder (seeded)."""

    def __init__(self, seed: int, max_stmts: int = 14,
                 max_depth: int = 3) -> None:
        self.rng = random.Random(seed)
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self._names = iter(f"v{i}" for i in range(10_000))

    def fresh(self) -> str:
        return next(self._names)

    # ---- expressions --------------------------------------------------
    def int_expr(self, scope: _Scope, depth: int = 0) -> str:
        rng = self.rng
        choices = ["lit"]
        if scope.int_vars:
            choices += ["var"] * 3
        if scope.loop_vars:
            choices += ["loop"] * 2
        if depth < self.max_depth:
            choices += ["bin"] * 3
            if scope.arrays and scope.loop_vars:
                choices += ["index"] * 2
            if scope.pointers and scope.loop_vars:
                choices += ["deref"]
        kind = rng.choice(choices)
        if kind == "lit":
            return str(rng.randint(-9, 20))
        if kind == "var":
            return rng.choice(scope.int_vars)
        if kind == "loop":
            return rng.choice(scope.loop_vars)
        if kind == "bin":
            op = rng.choice(["+", "-", "*", "+", "-", "<", "==", "%", "/"])
            left = self.int_expr(scope, depth + 1)
            if op in ("%", "/"):
                right = str(rng.randint(2, 7))
            else:
                right = self.int_expr(scope, depth + 1)
            return f"({left} {op} {right})"
        if kind == "index":
            name, size, is_float = rng.choice(
                [a for a in scope.arrays if not a[2]] or scope.arrays
            )
            if is_float:
                return self.int_expr(scope, depth + 1)
            return f"{name}[{self._index(scope, size)}]"
        if kind == "deref":
            candidates = [p for p in scope.pointers if not p[1]]
            if not candidates:
                return self.int_expr(scope, depth + 1)
            name, _ = rng.choice(candidates)
            return f"{name}[{self._index(scope, 4)}]"
        raise AssertionError(kind)  # pragma: no cover

    def float_expr(self, scope: _Scope, depth: int = 0) -> str:
        rng = self.rng
        choices = ["lit"]
        if scope.float_vars:
            choices += ["var"] * 3
        if depth < self.max_depth:
            choices += ["bin"] * 2
            if any(a[2] for a in scope.arrays) and scope.loop_vars:
                choices += ["index"] * 2
            choices += ["conv"]
        kind = rng.choice(choices)
        if kind == "lit":
            return f"{rng.randint(0, 40) * 0.25}"
        if kind == "var":
            return rng.choice(scope.float_vars)
        if kind == "bin":
            op = rng.choice(["+", "-", "*", "+"])
            return (f"({self.float_expr(scope, depth + 1)} {op} "
                    f"{self.float_expr(scope, depth + 1)})")
        if kind == "index":
            name, size, _ = rng.choice([a for a in scope.arrays if a[2]])
            return f"{name}[{self._index(scope, size)}]"
        if kind == "conv":
            return f"({self.int_expr(scope, depth + 1)} * 0.5)"
        raise AssertionError(kind)  # pragma: no cover

    def _index(self, scope: _Scope, size: int) -> str:
        rng = self.rng
        if scope.loop_vars and rng.random() < 0.7:
            var = rng.choice(scope.loop_vars)
            return f"({var} % {size})"
        return str(rng.randint(0, size - 1))

    # ---- statements ------------------------------------------------------
    def stmts(self, scope: _Scope, budget: int, depth: int = 0,
              indent: str = "  ") -> List[str]:
        rng = self.rng
        out: List[str] = []
        n = rng.randint(1, max(1, budget))
        for _ in range(n):
            kinds = ["assign_int", "assign_int", "print"]
            if scope.float_vars:
                kinds.append("assign_float")
            if scope.arrays and scope.loop_vars:
                kinds += ["store", "store"]
            if scope.pointers:
                kinds.append("pstore")
            if depth < 2:
                kinds += ["if", "for"]
            kind = rng.choice(kinds)
            if kind == "assign_int" and scope.int_vars:
                var = rng.choice(scope.int_vars)
                out.append(f"{indent}{var} = {self.int_expr(scope)};")
            elif kind == "assign_float" and scope.float_vars:
                var = rng.choice(scope.float_vars)
                out.append(f"{indent}{var} = {self.float_expr(scope)};")
            elif kind == "store" and scope.arrays and scope.loop_vars:
                name, size, is_float = rng.choice(scope.arrays)
                value = (self.float_expr(scope) if is_float
                         else self.int_expr(scope))
                out.append(f"{indent}{name}[{self._index(scope, size)}] "
                           f"= {value};")
            elif kind == "pstore" and scope.pointers:
                name, is_float = rng.choice(scope.pointers)
                value = (self.float_expr(scope) if is_float
                         else self.int_expr(scope))
                out.append(f"{indent}{name}[{self._index(scope, 4)}] "
                           f"= {value};")
            elif kind == "print":
                expr = (self.int_expr(scope) if not scope.float_vars
                        or rng.random() < 0.6 else self.float_expr(scope))
                out.append(f"{indent}print({expr});")
            elif kind == "if":
                cond = self.int_expr(scope)
                body = self.stmts(scope, budget // 2, depth + 1,
                                  indent + "  ")
                out.append(f"{indent}if ({cond}) {{")
                out.extend(body)
                if rng.random() < 0.5:
                    out.append(f"{indent}}} else {{")
                    out.extend(self.stmts(scope, budget // 2, depth + 1,
                                          indent + "  "))
                out.append(f"{indent}}}")
            elif kind == "for":
                var = self.fresh()
                bound = rng.randint(2, 6)
                scope.loop_vars.append(var)
                body = self.stmts(scope, budget // 2, depth + 1,
                                  indent + "  ")
                out.append(f"{indent}int {var};")
                out.append(f"{indent}for ({var} = 0; {var} < {bound}; "
                           f"{var} = {var} + 1) {{")
                out.extend(body)
                out.append(f"{indent}}}")
                scope.loop_vars.pop()
        return out

    # ---- program ------------------------------------------------------------
    def generate(self) -> str:
        rng = self.rng
        scope = _Scope()
        lines: List[str] = []
        # globals
        for _ in range(rng.randint(0, 2)):
            name = self.fresh()
            if rng.random() < 0.5:
                lines.append(f"int {name};")
                scope.int_vars.append(name)
            else:
                size = rng.randint(4, 8)
                is_float = rng.random() < 0.5
                ty = "double" if is_float else "int"
                lines.append(f"{ty} {name}[{size}];")
                scope.arrays.append((name, size, is_float))
        lines.append("void main() {")
        # locals
        for _ in range(rng.randint(2, 4)):
            name = self.fresh()
            lines.append(f"  int {name};")
            scope.int_vars.append(name)
        for _ in range(rng.randint(0, 2)):
            name = self.fresh()
            lines.append(f"  double {name};")
            scope.float_vars.append(name)
        for _ in range(rng.randint(0, 2)):
            name = self.fresh()
            size = rng.randint(4, 8)
            is_float = rng.random() < 0.4
            ty = "double" if is_float else "int"
            lines.append(f"  {ty} {name}[{size}];")
            scope.arrays.append((name, size, is_float))
        # pointers: &scalar, array decay, or heap — the alias fodder
        for _ in range(rng.randint(0, 2)):
            name = self.fresh()
            is_float = False
            lines.append(f"  int *{name};")
            source = rng.random()
            if source < 0.4 and scope.arrays:
                arrays = [a for a in scope.arrays if not a[2]]
                if arrays:
                    base = rng.choice(arrays)[0]
                    lines.append(f"  {name} = {base};")
                else:
                    lines.append(f"  {name} = alloc(4);")
            else:
                lines.append(f"  {name} = alloc(4);")
            scope.pointers.append((name, is_float))
        lines.extend(self.stmts(scope, self.max_stmts))
        # final checksum prints
        for var in scope.int_vars[:3]:
            lines.append(f"  print({var});")
        for name, size, is_float in scope.arrays[:2]:
            lines.append(f"  print({name}[0] + {name}[{size - 1}]);")
        lines.append("}")
        return "\n".join(lines)


def random_program(seed: int, max_stmts: int = 14) -> str:
    """Generate one deterministic random program for ``seed``."""
    return ProgramGenerator(seed, max_stmts=max_stmts).generate()
