"""The superblock-scheduling ablation (docs/scheduling.md).

One table — {unscheduled, block, superblock} × the eight SPEC-shaped
workloads on the standard 4-wide/2-port machine — shared by two
harnesses: ``benchmarks/test_ablation_superblock.py`` (the figure
regeneration) and the ``bench_smoke`` CI tier, which re-emits
``results/ablation_superblock.txt`` on every PR so scheduling
regressions are visible as an artifact diff.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import SpecConfig
from .base import all_workloads, get_workload
from .runner import run_workload


def geomean(values: Sequence[float]) -> float:
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values)) if values else 1.0


def superblock_ablation(names: Optional[Sequence[str]] = None
                        ) -> Tuple[List[Dict], Dict[str, float]]:
    """Run the ablation; returns ``(rows, summary)``.

    Each row compares one workload's cycles under no scheduling, block
    list scheduling and superblock scheduling (plus the taken-branch
    counts the layout pass attacks); the summary carries the geomean
    cycle ratios against the block baseline.
    """
    workloads = ([get_workload(n) for n in names] if names is not None
                 else all_workloads())
    sb_config = SpecConfig.profile().but(scheduler="superblock")
    rows: List[Dict] = []
    for w in workloads:
        none = run_workload(w, SpecConfig.profile().but(schedule=False))
        block = run_workload(w, SpecConfig.profile())
        sb = run_workload(w, sb_config)
        rows.append({
            "benchmark": w.name,
            "none_cycles": none.stats.cycles,
            "block_cycles": block.stats.cycles,
            "superblock_cycles": sb.stats.cycles,
            "sb_vs_block_%": 100.0 * (1 - sb.stats.cycles
                                      / block.stats.cycles),
            "taken_block": block.stats.taken_branches,
            "taken_sb": sb.stats.taken_branches,
        })
    summary = {
        "geomean_block_vs_none": geomean(
            [r["block_cycles"] / r["none_cycles"] for r in rows]),
        "geomean_sb_vs_block": geomean(
            [r["superblock_cycles"] / r["block_cycles"] for r in rows]),
    }
    return rows, summary
