"""The differential fault-injection campaign.

For every workload: compile once (optionally through an adversarial
profile transform), run the reference interpreter once on the *original*
program — the correctness oracle — then simulate the optimized program
under every ``(scenario, seed)`` perturbation and require bit-for-bit
output equality.  An injected run may cost extra cycles (replays,
check misses, cold caches); it must never change a single output line.

The campaign is the repository's standing proof of the recovery
tentpole: ``pytest -m faultinject`` runs it seeded and bounded, and the
CLI exposes it as ``python -m repro.cli campaign``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from ..core import SpecConfig
from ..pipeline import compile_program
from ..profiling import run_module
from ..target import MachineError, run_program
from ..workloads import all_workloads, get_workload, recovery_workloads
from ..workloads.runner import _machine_kwargs
from .injector import make_injector


@dataclass
class InjectedRun:
    """One perturbed simulation checked against the oracle."""

    workload: str
    scenario: str
    seed: int
    ok: bool
    cycles: int = 0
    deferred_faults: int = 0
    spec_recoveries: int = 0
    check_misses: int = 0
    replay_loads: int = 0
    error: str = ""


@dataclass
class CampaignReport:
    """All runs of one campaign, plus the per-workload compile notes."""

    runs: List[InjectedRun] = field(default_factory=list)
    degraded: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[InjectedRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_recoveries(self) -> int:
        return sum(r.spec_recoveries for r in self.runs)

    def summary(self) -> str:
        lines = [f"campaign: {len(self.runs)} injected runs, "
                 f"{len(self.failures)} mismatches, "
                 f"{sum(r.deferred_faults for r in self.runs)} deferred "
                 f"faults, {self.total_recoveries} chk.s recoveries, "
                 f"{sum(r.check_misses for r in self.runs)} check misses"]
        for r in self.failures:
            lines.append(f"  FAIL {r.workload} scenario={r.scenario} "
                         f"seed={r.seed}: {r.error or 'output mismatch'}")
        if self.degraded:
            lines.append(f"  degraded functions: {', '.join(self.degraded)}")
        return "\n".join(lines)


def run_campaign(workload_names: Optional[Sequence[str]] = None,
                 config: Optional[SpecConfig] = None,
                 scenarios: Sequence[str] = ("poison", "storm", "chaos"),
                 seeds: Iterable[int] = (0, 1, 2),
                 profile_transform: Optional[Callable] = None,
                 fuel: int = 50_000_000) -> CampaignReport:
    """Run the differential campaign (see module docstring).

    Each workload is compiled **once** per campaign; only the simulator
    re-runs per ``(scenario, seed)``, so a 200-run campaign costs eight
    compiles, not two hundred.
    """
    workloads = ([get_workload(n) for n in workload_names]
                 if workload_names is not None
                 else all_workloads() + recovery_workloads())
    # Default: data speculation from the alias profile, but *static*
    # control speculation — the edge profile would prove the recovery
    # workloads' guards hot and optimize their ld.s sites away, leaving
    # the poison scenario nothing to poison.
    config = config or SpecConfig.profile().but(use_edge_profile=False)
    seeds = list(seeds)
    report = CampaignReport()
    for workload in workloads:
        compiled = compile_program(workload.source, config,
                                   train_inputs=workload.train_inputs,
                                   fuel=fuel,
                                   profile_transform=profile_transform)
        report.degraded.extend(f"{workload.name}:{fn}"
                               for fn in compiled.degraded)
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=workload.ref_inputs)
        kwargs = _machine_kwargs()
        for scenario in scenarios:
            for seed in seeds:
                injector = make_injector(scenario, seed)
                run = InjectedRun(workload.name, scenario, seed, ok=False)
                try:
                    stats, output = run_program(
                        compiled.program, inputs=workload.ref_inputs,
                        fuel=4 * fuel, injector=injector, **kwargs)
                except MachineError as exc:
                    run.error = str(exc)
                else:
                    run.ok = output == expected
                    if not run.ok:
                        run.error = _first_divergence(expected, output)
                    run.cycles = stats.cycles
                    run.deferred_faults = stats.deferred_faults
                    run.spec_recoveries = stats.spec_recoveries
                    run.check_misses = stats.check_misses
                    run.replay_loads = stats.replay_loads
                report.runs.append(run)
    return report


def _first_divergence(expected: List[str], actual: List[str]) -> str:
    for i, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            return f"line {i}: expected {want!r}, got {got!r}"
    return (f"length mismatch: expected {len(expected)} lines, "
            f"got {len(actual)}")
