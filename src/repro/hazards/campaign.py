"""The differential fault-injection campaign.

For every workload: compile once (optionally through an adversarial
profile transform), run the reference interpreter once on the *original*
program — the correctness oracle — then simulate the optimized program
under every ``(scenario, seed)`` perturbation and require bit-for-bit
output equality.  An injected run may cost extra cycles (replays,
check misses, cold caches); it must never change a single output line.

The campaign is the repository's standing proof of the recovery
tentpole: ``pytest -m faultinject`` runs it seeded and bounded, and the
CLI exposes it as ``python -m repro.cli campaign``.

With ``jobs > 1`` the injected runs fan out over a **process pool**
(simulation is pure Python, so threads would serialize on the GIL).
Each worker process compiles a workload once — on first contact,
memoized per process — and then only simulates; tasks are distributed
and results collected with ``executor.map``, which preserves submission
order, so the report is **bit-for-bit identical** to ``jobs=1``
regardless of completion order.  ``jobs=1`` keeps the exact sequential
path (no pool, no pickling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import SpecConfig
from ..pipeline import compile_program
from ..profiling import run_module
from ..target import MachineError, run_program
from ..workloads import all_workloads, get_workload, recovery_workloads
from ..workloads.runner import _machine_kwargs
from .injector import make_injector


@dataclass
class InjectedRun:
    """One perturbed simulation checked against the oracle."""

    workload: str
    scenario: str
    seed: int
    ok: bool
    cycles: int = 0
    deferred_faults: int = 0
    spec_recoveries: int = 0
    check_misses: int = 0
    replay_loads: int = 0
    error: str = ""


@dataclass
class CampaignReport:
    """All runs of one campaign, plus the per-workload compile notes."""

    runs: List[InjectedRun] = field(default_factory=list)
    degraded: List[str] = field(default_factory=list)
    #: True when the injected runs actually fanned out over the process
    #: pool; False when ``jobs=1`` or the break-even fallback kept the
    #: campaign sequential.  The perf benchmark reports this instead of
    #: letting a sub-1.0 "speedup" imply the pool ran and lost.
    parallel_taken: bool = False

    @property
    def failures(self) -> List[InjectedRun]:
        return [r for r in self.runs if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_recoveries(self) -> int:
        return sum(r.spec_recoveries for r in self.runs)

    def summary(self) -> str:
        lines = [f"campaign: {len(self.runs)} injected runs, "
                 f"{len(self.failures)} mismatches, "
                 f"{sum(r.deferred_faults for r in self.runs)} deferred "
                 f"faults, {self.total_recoveries} chk.s recoveries, "
                 f"{sum(r.check_misses for r in self.runs)} check misses"]
        for r in self.failures:
            lines.append(f"  FAIL {r.workload} scenario={r.scenario} "
                         f"seed={r.seed}: {r.error or 'output mismatch'}")
        if self.degraded:
            lines.append(f"  degraded functions: {', '.join(self.degraded)}")
        return "\n".join(lines)


def _injected_run(compiled, expected: List[str], workload_name: str,
                  ref_inputs, scenario: str, seed: int, fuel: int,
                  kwargs: dict, engine: str = "predecode") -> InjectedRun:
    """Simulate one ``(scenario, seed)`` perturbation and check it
    against the oracle — the single code path both the sequential and
    the parallel campaign execute."""
    injector = make_injector(scenario, seed)
    run = InjectedRun(workload_name, scenario, seed, ok=False)
    try:
        stats, output = run_program(
            compiled.program, inputs=ref_inputs,
            fuel=4 * fuel, injector=injector, engine=engine, **kwargs)
    except MachineError as exc:
        run.error = str(exc)
    else:
        run.ok = output == expected
        if not run.ok:
            run.error = _first_divergence(expected, output)
        run.cycles = stats.cycles
        run.deferred_faults = stats.deferred_faults
        run.spec_recoveries = stats.spec_recoveries
        run.check_misses = stats.check_misses
        run.replay_loads = stats.replay_loads
    return run


# ---------------------------------------------------------------------------
# Worker-process side of the parallel campaign.  Each worker compiles a
# workload on first contact and memoizes (compiled, oracle output,
# degraded notes) for the rest of its tasks — so a pool of N workers
# costs at most N compiles per workload, all identical by the
# determinism the compile pipeline already guarantees.
# ---------------------------------------------------------------------------

_WORKER_MEMO: Dict[tuple, tuple] = {}

#: measured break-even for the process-pool fan-out: on boxes with
#: fewer CPUs, or matrices with fewer injected runs, per-task pickling
#: and per-worker compile warm-up dominate and the pool *loses* to
#: serial (BENCH_perf.json recorded jobs=4 at 0.75x of jobs=1 on a
#: low-CPU machine).  ``run_campaign`` silently falls back to the
#: sequential path below either threshold — bit-for-bit identical
#: output either way.  The fuller adaptive-chunking rework (batch
#: sizing by workload cost, pre-fork after the shared compile) remains
#: a ROADMAP item.
PARALLEL_MIN_CPUS = 4
PARALLEL_MIN_RUNS = 48


def _campaign_task(task: tuple) -> Tuple[InjectedRun, Tuple[str, ...]]:
    (workload_name, config, scenario, seed, fuel, profile_transform,
     engine) = task
    memo_key = (workload_name, repr(config), fuel)
    entry = _WORKER_MEMO.get(memo_key)
    if entry is None:
        workload = get_workload(workload_name)
        compiled = compile_program(workload.source, config,
                                   train_inputs=workload.train_inputs,
                                   fuel=fuel,
                                   profile_transform=profile_transform)
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=workload.ref_inputs)
        degraded = tuple(f"{workload.name}:{fn}"
                         for fn in compiled.degraded)
        entry = (compiled, expected, degraded, list(workload.ref_inputs),
                 _machine_kwargs())
        _WORKER_MEMO[memo_key] = entry
    compiled, expected, degraded, ref_inputs, kwargs = entry
    run = _injected_run(compiled, expected, workload_name, ref_inputs,
                        scenario, seed, fuel, kwargs, engine)
    return run, degraded


def run_campaign(workload_names: Optional[Sequence[str]] = None,
                 config: Optional[SpecConfig] = None,
                 scenarios: Sequence[str] = ("poison", "storm", "chaos"),
                 seeds: Iterable[int] = (0, 1, 2),
                 profile_transform: Optional[Callable] = None,
                 fuel: int = 50_000_000,
                 jobs: int = 1,
                 force_parallel: bool = False,
                 engine: str = "predecode") -> CampaignReport:
    """Run the differential campaign (see module docstring).

    Each workload is compiled **once** per campaign (once per worker
    process when ``jobs > 1``); only the simulator re-runs per
    ``(scenario, seed)``, so a 200-run campaign costs a handful of
    compiles, not two hundred.  The report is bit-for-bit identical for
    any ``jobs``; with ``jobs > 1``, ``profile_transform`` must be
    picklable (the named :data:`~repro.hazards.ADVERSARIES` are).

    ``jobs > 1`` only engages the process pool past the measured
    break-even — at least :data:`PARALLEL_MIN_CPUS` CPUs and
    :data:`PARALLEL_MIN_RUNS` injected runs; below it the pool is
    slower than serial and the campaign silently runs sequentially
    (the report is identical either way — and
    :attr:`CampaignReport.parallel_taken` records which path ran).
    ``force_parallel=True`` overrides the fallback — the knob the
    bit-identity tests use to exercise the pool machinery regardless
    of the host.

    ``engine`` selects the simulator dispatch implementation for every
    injected run (:data:`repro.target.ENGINES`); the oracle is always
    the reference interpreter, so ``engine="trace"`` turns the campaign
    into a differential proof that the trace JIT deoptimizes correctly
    under every perturbation.
    """
    workloads = ([get_workload(n) for n in workload_names]
                 if workload_names is not None
                 else all_workloads() + recovery_workloads())
    # Default: data speculation from the alias profile, but *static*
    # control speculation — the edge profile would prove the recovery
    # workloads' guards hot and optimize their ld.s sites away, leaving
    # the poison scenario nothing to poison.
    config = config or SpecConfig.profile().but(use_edge_profile=False)
    seeds = list(seeds)
    jobs = max(1, int(jobs))
    total_runs = len(workloads) * len(list(scenarios)) * len(seeds)
    import os

    past_break_even = ((os.cpu_count() or 1) >= PARALLEL_MIN_CPUS
                       and total_runs >= PARALLEL_MIN_RUNS)
    # (an empty scenario/seed matrix leaves nothing to fan out, but the
    # sequential path still records each workload's degraded notes)
    if jobs > 1 and total_runs and (past_break_even or force_parallel):
        return _run_campaign_parallel(workloads, config, scenarios, seeds,
                                      profile_transform, fuel, jobs, engine)
    report = CampaignReport()
    for workload in workloads:
        compiled = compile_program(workload.source, config,
                                   train_inputs=workload.train_inputs,
                                   fuel=fuel,
                                   profile_transform=profile_transform)
        report.degraded.extend(f"{workload.name}:{fn}"
                               for fn in compiled.degraded)
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=workload.ref_inputs)
        kwargs = _machine_kwargs()
        for scenario in scenarios:
            for seed in seeds:
                report.runs.append(_injected_run(
                    compiled, expected, workload.name,
                    workload.ref_inputs, scenario, seed, fuel, kwargs,
                    engine))
    return report


def _run_campaign_parallel(workloads, config: SpecConfig,
                           scenarios: Sequence[str], seeds: List[int],
                           profile_transform: Optional[Callable],
                           fuel: int, jobs: int,
                           engine: str = "predecode") -> CampaignReport:
    """Fan the injected runs over a process pool.  Tasks are built in
    the sequential path's exact nested order and collected with
    ``executor.map`` (submission order), so the report cannot depend on
    completion order."""
    from concurrent.futures import ProcessPoolExecutor

    tasks = [(workload.name, config, scenario, seed, fuel,
              profile_transform, engine)
             for workload in workloads
             for scenario in scenarios
             for seed in seeds]
    report = CampaignReport(parallel_taken=True)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(_campaign_task, tasks, chunksize=1))
    seen_degraded = set()
    for (run, degraded), task in zip(results, tasks):
        report.runs.append(run)
        if task[0] not in seen_degraded:
            seen_degraded.add(task[0])
            report.degraded.extend(degraded)
    return report


def _first_divergence(expected: List[str], actual: List[str]) -> str:
    for i, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            return f"line {i}: expected {want!r}, got {got!r}"
    return (f"length mismatch: expected {len(expected)} lines, "
            f"got {len(actual)}")
