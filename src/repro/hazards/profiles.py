"""Adversarial alias-profile transforms.

Di Pierro & Wiklicky's point about probabilistic analyses applies to
the paper's §3.2.1 scheme directly: an alias profile is a *probability
estimate* collected on the training input, and it lies on inputs it
never saw.  These transforms manufacture the worst case — profiles
that are deliberately, maximally wrong — and feed them through the
pipeline (``compile_program(..., profile_transform=...)``).  The
compiled program then speculates past aliases that really happen and
checks for aliases that never do; the differential campaign verifies
the ALAT + ``chk.s`` recovery machinery absorbs all of it.

Each transform returns a **new** :class:`AliasProfile`; the input is
never mutated (the real profile may parameterize other builds).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict

from ..profiling.alias_profile import AliasProfile


def _clone(profile: AliasProfile) -> AliasProfile:
    out = AliasProfile(profile.granularity)
    for attr in ("load_locs", "store_locs", "load_sublocs",
                 "store_sublocs"):
        dst = getattr(out, attr)
        for key, counter in getattr(profile, attr).items():
            dst[key] = Counter(counter)
    out.load_count = Counter(profile.load_count)
    out.store_count = Counter(profile.store_count)
    for attr in ("call_mod", "call_ref", "call_mod_sub", "call_ref_sub"):
        dst = getattr(out, attr)
        for key, locs in getattr(profile, attr).items():
            dst[key] = set(locs)
    return out


def empty_profile(profile: AliasProfile) -> AliasProfile:
    """The maximally optimistic lie: every site claims it never touched
    any LOC (and never executed).  The flagger then marks *every*
    may-alias unlikely — speculation past all real aliasing."""
    return AliasProfile(profile.granularity)


def shuffle_profile(profile: AliasProfile, seed: int = 0) -> AliasProfile:
    """Permute the observed LOC sets among sites: each load/store site
    reports some *other* site's footprint.  Likely aliases become
    unlikely and vice versa, site by site."""
    out = _clone(profile)
    rng = random.Random(seed)
    for attr in ("load_locs", "store_locs", "load_sublocs",
                 "store_sublocs", "call_mod", "call_ref",
                 "call_mod_sub", "call_ref_sub"):
        table: Dict = getattr(out, attr)
        keys = list(table)
        values = [table[k] for k in keys]
        rng.shuffle(values)
        for key, value in zip(keys, values):
            table[key] = value
    return out


def invert_profile(profile: AliasProfile) -> AliasProfile:
    """Complement each site's LOC set within the union of all observed
    LOCs: every alias that really happened is reported as never seen,
    and every LOC the site never touched is reported as likely.  The
    compiler both speculates past real aliasing *and* drags spurious
    operands into µ/χ lists."""
    out = _clone(profile)
    for loc_attr, sub_attr in (("load_locs", "load_sublocs"),
                               ("store_locs", "store_sublocs")):
        locs: Dict[int, Counter] = getattr(out, loc_attr)
        sublocs: Dict[int, Counter] = getattr(out, sub_attr)
        all_locs = set()
        for counter in locs.values():
            all_locs.update(counter)
        all_sublocs = set()
        for counter in sublocs.values():
            all_sublocs.update(counter)
        for key, counter in list(locs.items()):
            locs[key] = Counter({loc: 1 for loc in all_locs - set(counter)})
        for key, counter in list(sublocs.items()):
            sublocs[key] = Counter(
                {sub: 1 for sub in all_sublocs - set(counter)})
    return out


#: name → transform, for the CLI and the campaign
ADVERSARIES = {
    "empty": empty_profile,
    "shuffle": shuffle_profile,
    "invert": invert_profile,
}
