"""``repro.hazards`` — deterministic fault injection and the
differential-testing campaign (docs/recovery.md).

The paper's premise is that speculation is *safe to be wrong*: the ALAT
catches data misspeculation and ``chk.s`` catches control
misspeculation.  This package stress-tests that premise.  An
:class:`Injector` perturbs the machine mid-run from a seeded stream —
spurious NaT deferrals under ``ld.s``, forced ALAT evictions and cache
flushes after stores — while the adversarial profile transforms
(:func:`empty_profile` / :func:`shuffle_profile` /
:func:`invert_profile`) feed the compiler deliberately wrong alias
profiles.  :func:`run_campaign` drives both across the SPEC-shaped
workloads and checks every injected run still matches the reference
interpreter bit-for-bit: recovery may cost cycles, never correctness.
"""

from .campaign import CampaignReport, InjectedRun, run_campaign
from .injector import SCENARIOS, Injector, make_injector
from .profiles import (ADVERSARIES, empty_profile, invert_profile,
                       shuffle_profile)
from .service_chaos import (FAST_SCENARIOS, SERVICE_SCENARIOS,
                            ScenarioResult, ServiceChaosReport,
                            run_service_campaign)

__all__ = [
    "ADVERSARIES", "CampaignReport", "FAST_SCENARIOS", "InjectedRun",
    "Injector", "SCENARIOS", "SERVICE_SCENARIOS", "ScenarioResult",
    "ServiceChaosReport", "empty_profile", "invert_profile",
    "make_injector", "run_campaign", "run_service_campaign",
    "shuffle_profile",
]
