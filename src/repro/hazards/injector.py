"""Seeded machine-level fault injection.

An :class:`Injector` rides along a simulation
(``run_program(..., injector=...)``) and perturbs it at the two points
where the architecture promises recovery:

* **control-speculative loads** — :meth:`Injector.poison_load` may turn
  an ``ld.s`` into a spurious deferred fault: the load delivers NaT
  exactly as if its address had been unmapped, and the ``chk.s``
  recovery block must replay it and restore the real value.  (``ld.a``
  is deliberately *not* poisoned: a real advanced load faults
  immediately rather than deferring, so its value may be consumed
  before any check — poisoning it would inject a wrong execution, not
  a recoverable misspeculation);
* **stores** — :meth:`Injector.after_store` may force an ALAT capacity
  eviction (turning later check hits into replays) or flush the data
  cache (making later loads slower).

Every decision comes from one ``random.Random(seed)`` stream, so a
given ``(program, inputs, seed, rates)`` tuple perturbs identically on
every run — failures found by the campaign are replayable.
``run_program`` clones the injector before running (the same
configuration-object convention as the ALAT and cache); clones share
the :attr:`telemetry` counter so the caller still sees what happened.
"""

from __future__ import annotations

import random
from collections import Counter

#: Named perturbation profiles for the campaign and the CLI ``--inject``
#: flag.  Rates are per-opportunity probabilities.
SCENARIOS = {
    "none": {},
    # spurious deferred faults under control speculation: every ld.s has
    # a 5% chance of delivering NaT instead of its value
    "poison": {"sload_nat_rate": 0.05},
    # adversarial store storm: 25% of stores also evict a random ALAT
    # entry, so correct data speculation still misses its checks
    "storm": {"alat_evict_rate": 0.25},
    # cold-cache adversary: 2% of stores flush all residency
    "flush": {"cache_flush_rate": 0.02},
    # everything at once
    "chaos": {"sload_nat_rate": 0.10,
              "alat_evict_rate": 0.25, "cache_flush_rate": 0.01},
}


class Injector:
    """Deterministic fault injector (see module docstring).

    Args:
        seed: seeds the decision stream; same seed → same perturbation.
        sload_nat_rate: probability an ``ld.s`` spuriously defers.
        alat_evict_rate: probability a store also evicts one random
            ALAT entry.
        cache_flush_rate: probability a store also flushes the cache.
    """

    def __init__(self, seed: int = 0, *, sload_nat_rate: float = 0.0,
                 alat_evict_rate: float = 0.0,
                 cache_flush_rate: float = 0.0) -> None:
        self.seed = seed
        self.sload_nat_rate = sload_nat_rate
        self.alat_evict_rate = alat_evict_rate
        self.cache_flush_rate = cache_flush_rate
        self._rng = random.Random(seed)
        #: what the injector actually did, summed across clones
        self.telemetry: Counter = Counter()

    def clone(self) -> "Injector":
        """A fresh injector with the same seed and rates (rewound
        decision stream) sharing this one's telemetry counter."""
        fresh = Injector(self.seed,
                         sload_nat_rate=self.sload_nat_rate,
                         alat_evict_rate=self.alat_evict_rate,
                         cache_flush_rate=self.cache_flush_rate)
        fresh.telemetry = self.telemetry
        return fresh

    # ---- hooks called by the machine ------------------------------------
    def poison_load(self, op: str, addr: int) -> bool:
        """Should this control-speculative load spuriously defer?
        Called for every executed ``ld.s`` with a mapped address."""
        rate = self.sload_nat_rate
        if rate and self._rng.random() < rate:
            self.telemetry[f"poison:{op}"] += 1
            return True
        return False

    def after_store(self, alat, cache) -> None:
        """Post-store perturbation: forced eviction / cache flush."""
        if self.alat_evict_rate and self._rng.random() < self.alat_evict_rate:
            if alat.evict_one(self._rng):
                self.telemetry["alat-evict"] += 1
        if self.cache_flush_rate \
                and self._rng.random() < self.cache_flush_rate:
            cache.flush()
            self.telemetry["cache-flush"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rates = {k: v for k, v in (
            ("ld.s", self.sload_nat_rate),
            ("evict", self.alat_evict_rate), ("flush", self.cache_flush_rate),
        ) if v}
        return f"<Injector seed={self.seed} {rates}>"


def make_injector(scenario: str, seed: int = 0) -> Injector:
    """Build the injector for a named :data:`SCENARIOS` entry."""
    try:
        rates = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown injection scenario {scenario!r} "
            f"(choose from {', '.join(sorted(SCENARIOS))})") from None
    return Injector(seed, **rates)
