"""Service-level chaos campaign (docs/service.md, "Overload & recovery").

The fault-injection campaign (:mod:`repro.hazards.campaign`) perturbs
the *machine* mid-run; this module perturbs the *service* around it:
worker processes killed mid-request, workers stalling past a request's
``timeout_ms``, client connections dropped mid-batch, overload storms
from greedy clients, and SIGTERM-style drain under load.  The oracle is
the service contract:

* **exactly one outcome** — every awaited request ends in exactly one
  of {ok result, typed error}; ``ok + errors == requests``, no request
  is silently dropped and none resolves twice;
* **no hangs** — every client call returns within its socket deadline;
  the scenario itself is bounded;
* **typed degradation** — a shed is a typed ``overload`` error carrying
  a ``retry_after_ms`` hint, a kill is ``worker-crash``, a stall is
  ``timeout``, drain is ``shutdown`` — never a raw disconnect for work
  the daemon accepted;
* **no duplicate work beyond dedup accounting** — the daemon-side
  compile counter moves by at most the number of distinct keys issued;
* **bit-identical results across retries** — a request retried after a
  shed/crash/timeout returns the same ``result`` payload as any other
  attempt of the same key.

Everything that lands in the report matrix is **deterministic** for a
given seed: counts of requests, outcomes by type, sheds, retried keys
and respawns — never latencies or attempt counts, which depend on
wall-clock scheduling.  Two runs of :func:`run_service_campaign` with
the same seed therefore produce bit-identical matrices; CI regenerates
``results/service_chaos.txt`` and diffs it.

Scenario families (:data:`SERVICE_SCENARIOS`):

============== ==========================================================
overload-storm blockers occupy every ``max_inflight`` slot; further
               work must shed with typed ``overload`` + hint, and every
               shed key must later succeed through client backoff
slow-worker    work outlasting its ``timeout_ms`` returns a typed
               ``timeout``; the work keeps running and an identical
               request reuses it
conn-drop      a client sends a batch and drops the connection before
               reading; the daemon survives and re-issued keys succeed
worker-kill    SIGKILL a worker subprocess mid-request: typed
               ``worker-crash``, exactly one respawn, retry succeeds
daemon-sigterm drain under load: in-flight work completes, new work on
               an open connection gets a typed ``shutdown`` error
============== ==========================================================

:data:`FAST_SCENARIOS` is the in-process (``workers=0``) subset the
tier-1 bit-identity test runs twice; the subprocess scenarios ride in
the full campaign (``python -m repro chaos``, the CI ``chaos`` job).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: every scenario family, in campaign order
SERVICE_SCENARIOS = ("overload-storm", "slow-worker", "conn-drop",
                     "worker-kill", "daemon-sigterm")

#: the in-process subset (no worker subprocesses) — fast enough to run
#: twice in tier-1 and assert the matrices bit-identical
FAST_SCENARIOS = ("overload-storm", "slow-worker", "conn-drop")

#: hard per-scenario wall bound: a scenario not done by then is a hang,
#: which is itself an oracle failure
SCENARIO_DEADLINE_S = 120.0

#: ``{salt}`` keeps content keys distinct per scenario/probe; the loop
#: bound comes from ``input()`` (the ``ref`` input), so execution cost
#: is paid on *every* run — a warm compile cache cannot speed a blocker
#: up, which is what keeps the scenarios deterministic across runs.
_SOURCE = """
void main() {{
  int n; int i; int s;
  n = input();
  i = 0; s = {salt};
  while (i < n) {{ s = s + i; i = i + 1; }}
  print(s);
}}
"""

#: ~1.5s of simulated+checked execution — the "slow" knob
_SLOW_ITERS = 600_000
#: comfortably past a 120ms timeout_ms, comfortably under a second
_STALL_ITERS = 300_000
#: milliseconds: fast probes
_FAST_ITERS = 4


def _work(salt: int, iters: int, **extra: Any) -> Dict[str, Any]:
    """One ``run`` work request with a scenario-distinct content key."""
    req = {"op": "run", "source": _SOURCE.format(salt=salt),
           "config": "profile", "train": [4], "ref": [iters]}
    req.update(extra)
    return req


@dataclass
class ScenarioResult:
    """One scenario's deterministic outcome accounting."""

    name: str
    #: awaited work requests (non-work ops and dropped batches excluded)
    requests: int = 0
    #: requests that resolved with an ok result
    ok: int = 0
    #: terminal typed-error outcomes, by error type
    errors: Dict[str, int] = field(default_factory=dict)
    #: typed ``overload`` errors observed (terminal or later retried)
    sheds: int = 0
    #: keys whose first attempt failed typed-retryable and that were
    #: resubmitted to success (requests *needing* retry — deterministic,
    #: unlike attempt counts)
    retried: int = 0
    #: worker subprocess respawns (daemon ``worker_restarts`` delta)
    respawns: int = 0
    #: distinct ``result`` payloads observed for the repeated probe key
    #: (the bit-identical-across-retries check; must be 1)
    distinct_results: int = 0
    oracle_ok: bool = False
    notes: List[str] = field(default_factory=list)

    def fail(self, note: str) -> None:
        self.oracle_ok = False
        self.notes.append(note)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "requests": self.requests,
            "ok": self.ok,
            "errors": dict(sorted(self.errors.items())),
            "sheds": self.sheds,
            "retried": self.retried,
            "respawns": self.respawns,
            "distinct_results": self.distinct_results,
            "oracle_ok": self.oracle_ok,
            "notes": list(self.notes),
        }


@dataclass
class ServiceChaosReport:
    """All scenarios of one campaign, plus the seed that drove them."""

    seed: int
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.oracle_ok for r in self.results)

    def matrix(self) -> str:
        """The scenario x outcome matrix — every field deterministic
        for a given seed, so two runs diff clean (results/
        service_chaos.txt)."""
        lines = [f"service chaos campaign (seed {self.seed})",
                 f"{'scenario':<15} {'req':>4} {'ok':>4} "
                 f"{'typed errors':<28} {'shed':>4} {'retry':>5} "
                 f"{'respawn':>7} {'distinct':>8} oracle"]
        for r in self.results:
            typed = ",".join(f"{t}={n}"
                             for t, n in sorted(r.errors.items())) or "-"
            lines.append(
                f"{r.name:<15} {r.requests:>4} {r.ok:>4} {typed:<28} "
                f"{r.sheds:>4} {r.retried:>5} {r.respawns:>7} "
                f"{r.distinct_results:>8} "
                f"{'PASS' if r.oracle_ok else 'FAIL'}")
        total_err = sum(sum(r.errors.values()) for r in self.results)
        lines.append(f"{'total':<15} "
                     f"{sum(r.requests for r in self.results):>4} "
                     f"{sum(r.ok for r in self.results):>4} "
                     f"{f'n={total_err}':<28} "
                     f"{sum(r.sheds for r in self.results):>4} "
                     f"{sum(r.retried for r in self.results):>5} "
                     f"{sum(r.respawns for r in self.results):>7} "
                     f"{'':>8} "
                     f"{'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [self.matrix()]
        for r in self.results:
            for note in r.notes:
                lines.append(f"  {r.name}: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "ok": self.ok,
                "results": [r.to_dict() for r in self.results]}


# ---------------------------------------------------------------------------
# scenario plumbing
# ---------------------------------------------------------------------------

def _check_accounting(res: ScenarioResult) -> None:
    """The exactly-one-outcome invariant: every awaited request
    resolved exactly once."""
    resolved = res.ok + sum(res.errors.values())
    if resolved != res.requests:
        res.fail(f"outcome accounting broken: {res.requests} requests, "
                 f"{resolved} outcomes")


def _await_typed(res: ScenarioResult, call: Callable[[], Dict[str, Any]]
                 ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Issue one awaited request; record its single outcome.  Returns
    ``(response, None)`` on ok, ``(None, error_type)`` on a typed
    error, and fails the oracle on anything untyped."""
    from ..service.client import ServiceError

    res.requests += 1
    try:
        resp = call()
    except ServiceError as exc:
        res.errors[exc.type] = res.errors.get(exc.type, 0) + 1
        return None, exc.type
    except Exception as exc:  # noqa: BLE001 — untyped = oracle failure
        res.errors["untyped"] = res.errors.get("untyped", 0) + 1
        res.fail(f"untyped failure: {type(exc).__name__}: {exc}")
        return None, "untyped"
    res.ok += 1
    return resp, None


def _wait_for(predicate: Callable[[], bool], deadline_s: float,
              what: str) -> bool:
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def _poll_stats(client) -> Dict[str, Any]:
    return client.request({"op": "stats"})["result"]


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def _scenario_overload_storm(seed: int) -> ScenarioResult:
    """Blockers fill every ``max_inflight`` slot; further work sheds
    with typed ``overload`` + ``retry_after_ms``, stats count the
    sheds, and every shed key later succeeds through backoff."""
    from ..service import DaemonThread, RetryPolicy, ServiceClient
    from ..service.client import ServiceError

    res = ScenarioResult("overload-storm")
    salt = 1_000 + seed * 101
    with DaemonThread(workers=0, max_inflight=1) as dt:
        probe = ServiceClient(dt.host, dt.port, timeout=60.0)
        shed_before = _poll_stats(probe)["shed"]
        compiles_before = _poll_stats(probe).get("compiles", 0)
        # one blocker pinned in the single inflight slot (sent raw so
        # nothing waits on it yet); execution cost, not compile cost,
        # makes it slow — deterministic even with a warm cache
        blocker = ServiceClient(dt.host, dt.port, timeout=60.0).connect()
        blocker._send(dict(_work(salt, _SLOW_ITERS), id=1))
        if not _wait_for(lambda: _poll_stats(probe)["inflight"] >= 1,
                         30.0, "blocker in flight"):
            res.fail("blocker never became in-flight")
            return res
        # storm: greedy no-retry probes must every one shed, typed,
        # with a usable retry hint
        shed_keys = []
        for i in range(3):
            req = _work(salt + 1 + i, _FAST_ITERS)
            shed_keys.append(req)
            res.requests += 1
            try:
                probe.request(dict(req))
                res.ok += 1
                res.fail(f"probe {i} was admitted past max_inflight")
            except ServiceError as exc:
                res.errors[exc.type] = res.errors.get(exc.type, 0) + 1
                if exc.type != "overload":
                    res.fail(f"probe {i} got {exc.type!r}, not overload")
                elif exc.retry_after_ms is None or exc.retry_after_ms < 0:
                    res.fail(f"shed without a retry_after_ms hint")
                else:
                    res.sheds += 1
        # recovery: every shed key resubmitted through backoff must
        # succeed once the blocker drains
        retry_client = ServiceClient(
            dt.host, dt.port, timeout=60.0,
            retry=RetryPolicy(retries=40, retry_types=("overload",),
                              base_ms=40.0, factor=1.5, max_ms=300.0,
                              seed=seed))
        first_result = None
        for req in shed_keys:
            resp, err = _await_typed(
                res, lambda r=req: retry_client.request(dict(r)))
            if err is not None:
                res.fail(f"shed key never recovered: {err}")
            else:
                res.retried += 1
                if first_result is None:
                    first_result = resp["result"]
        # the blocker itself must resolve ok (exactly one outcome)
        res.requests += 1
        bresp = blocker._recv()
        if bresp.get("ok"):
            res.ok += 1
        else:
            res.errors["untyped"] = res.errors.get("untyped", 0) + 1
            res.fail("blocker did not resolve ok")
        blocker.close()
        # bit-identical across retries: replay the first shed key
        resp, err = _await_typed(
            res, lambda: probe.request(dict(shed_keys[0])))
        if err is None and first_result is not None:
            res.distinct_results = \
                1 if resp["result"] == first_result else 2
        after = _poll_stats(probe)
        # the daemon counts every shed *event* — the retry clients'
        # swallowed attempts included, whose count is timing-dependent
        # — so the deterministic check is a lower bound
        if after["shed"] - shed_before < res.sheds:
            res.fail(f"daemon counted {after['shed'] - shed_before} "
                     f"sheds, client saw {res.sheds}")
        distinct_keys = 4  # blocker + 3 probe keys
        if after.get("compiles", 0) - compiles_before > distinct_keys:
            res.fail("more compiles than distinct keys (dedup leak)")
        probe.close()
    res.oracle_ok = not res.notes
    if res.distinct_results != 1:
        res.fail(f"retried key returned {res.distinct_results} distinct "
                 f"results")
    _check_accounting(res)
    return res


def _scenario_slow_worker(seed: int) -> ScenarioResult:
    """Work outlasting its ``timeout_ms`` returns a typed ``timeout``;
    the work keeps running and an identical request reuses it."""
    from ..service import DaemonThread, ServiceClient

    res = ScenarioResult("slow-worker")
    salt = 3_000 + seed * 101
    with DaemonThread(workers=0) as dt:
        client = ServiceClient(dt.host, dt.port, timeout=60.0)
        stall = _work(salt, _STALL_ITERS)
        _, err = _await_typed(
            res, lambda: client.request(dict(stall, timeout_ms=120)))
        if err != "timeout":
            res.fail(f"stall past timeout_ms gave {err!r}, not timeout")
        # the work continues server-side; the identical key (no
        # deadline this time) joins it and must resolve ok
        resp1, err = _await_typed(res, lambda: client.request(dict(stall)))
        if err is not None:
            res.fail(f"rejoined stalled work failed: {err}")
        resp2, err = _await_typed(res, lambda: client.request(dict(stall)))
        if err is None and resp1 is not None:
            res.distinct_results = \
                1 if resp1["result"] == resp2["result"] else 2
        client.close()
    res.oracle_ok = not res.notes
    if res.distinct_results != 1:
        res.fail("timeout-then-retry returned divergent results")
    _check_accounting(res)
    return res


def _scenario_conn_drop(seed: int) -> ScenarioResult:
    """A client pipelines a batch and drops the connection before
    reading a single response; the daemon must survive and the same
    keys must succeed for the next client."""
    from ..service import DaemonThread, ServiceClient

    res = ScenarioResult("conn-drop")
    salt = 4_000 + seed * 101
    keys = [_work(salt + i, 30_000) for i in range(3)]
    with DaemonThread(workers=0) as dt:
        dropper = ServiceClient(dt.host, dt.port, timeout=60.0).connect()
        dropper._send([dict(req, id=i + 1)
                       for i, req in enumerate(keys)])
        dropper.close()  # mid-batch drop: nothing awaited, work queued
        client = ServiceClient(dt.host, dt.port, timeout=60.0)
        try:
            client.ping()
        except Exception as exc:  # noqa: BLE001
            res.fail(f"daemon unreachable after drop: {exc}")
            return res
        compiles_before = _poll_stats(client).get("compiles", 0)
        first_result = None
        for req in keys:
            resp, err = _await_typed(
                res, lambda r=req: client.request(dict(r)))
            if err is not None:
                res.fail(f"re-issued key failed after drop: {err}")
            elif first_result is None:
                first_result = resp["result"]
        # bit-identical: replay the first key
        resp, err = _await_typed(
            res, lambda: client.request(dict(keys[0])))
        if err is None and first_result is not None:
            res.distinct_results = \
                1 if resp["result"] == first_result else 2
        # the dropped batch and the re-issues dedup/cache onto the same
        # keys; anything beyond the distinct keys is duplicate work
        compiled = _poll_stats(client).get("compiles", 0) - compiles_before
        if compiled > len(keys):
            res.fail(f"dropped batch caused duplicate compiles "
                     f"({compiled} > {len(keys)} keys)")
        client.close()
    res.oracle_ok = not res.notes
    if res.distinct_results != 1:
        res.fail("replayed key returned divergent results")
    _check_accounting(res)
    return res


def _scenario_worker_kill(seed: int) -> ScenarioResult:
    """SIGKILL the worker subprocess mid-request: the waiter gets a
    typed ``worker-crash``, the daemon respawns exactly one worker, and
    the retried request succeeds with the same result as a replay."""
    from ..service import DaemonThread, ServiceClient
    from ..service.client import ServiceError

    res = ScenarioResult("worker-kill")
    salt = 5_000 + seed * 101
    with DaemonThread(workers=1) as dt:
        client = ServiceClient(dt.host, dt.port, timeout=60.0)
        restarts_before = _poll_stats(client)["worker_restarts"]
        handle = dt.daemon._handles[0]
        submitted_before = handle.requests
        req = _work(salt, _SLOW_ITERS)
        outcome: Dict[str, Any] = {}

        def issue() -> None:
            try:
                outcome["resp"] = client.request(dict(req))
            except ServiceError as exc:
                outcome["err"] = exc
            except Exception as exc:  # noqa: BLE001
                outcome["raw"] = exc

        t = threading.Thread(target=issue, daemon=True)
        t.start()
        # the submit counter increments once the request is on the
        # worker's pipe — the deterministic "mid-request" moment
        if not _wait_for(lambda: handle.requests > submitted_before,
                         30.0, "request reaches worker"):
            res.fail("request never reached the worker")
            return res
        os.kill(handle.proc.pid, signal.SIGKILL)
        t.join(SCENARIO_DEADLINE_S)
        res.requests += 1
        if t.is_alive():
            res.fail("killed worker left its waiter hanging")
            return res
        if "err" in outcome and outcome["err"].type == "worker-crash":
            res.errors["worker-crash"] = 1
        elif "resp" in outcome:
            res.ok += 1
            res.fail("kill landed after completion (expected mid-request)")
        else:
            res.errors["untyped"] = 1
            res.fail(f"untyped outcome from killed worker: "
                     f"{outcome.get('raw')}")
        # retry the same key: the daemon respawns the shard on demand
        resp1, err = _await_typed(res, lambda: client.request(dict(req)))
        if err is not None:
            res.fail(f"retry after worker-crash failed: {err}")
        else:
            res.retried += 1
        resp2, err = _await_typed(res, lambda: client.request(dict(req)))
        if err is None and resp1 is not None:
            res.distinct_results = \
                1 if resp1["result"] == resp2["result"] else 2
        res.respawns = _poll_stats(client)["worker_restarts"] \
            - restarts_before
        if res.respawns != 1:
            res.fail(f"expected exactly 1 respawn, saw {res.respawns}")
        client.close()
    res.oracle_ok = not res.notes
    if res.distinct_results != 1:
        res.fail("post-respawn retry returned divergent results")
    _check_accounting(res)
    return res


def _scenario_daemon_sigterm(seed: int) -> ScenarioResult:
    """Drain under load (the SIGTERM path — ``DaemonThread.stop`` runs
    the identical shutdown): in-flight work completes and is answered,
    new work on an already-open connection gets a typed ``shutdown``."""
    from ..service import DaemonThread, ServiceClient
    from ..service.client import ServiceError

    res = ScenarioResult("daemon-sigterm")
    salt = 6_000 + seed * 101
    dt = DaemonThread(workers=0, drain_grace=60.0)
    try:
        client = ServiceClient(dt.host, dt.port, timeout=60.0).connect()
        probe = ServiceClient(dt.host, dt.port, timeout=60.0).connect()
        req = _work(salt, _SLOW_ITERS)
        outcome: Dict[str, Any] = {}

        def issue() -> None:
            try:
                outcome["resp"] = client.request(dict(req))
            except Exception as exc:  # noqa: BLE001
                outcome["err"] = exc

        t = threading.Thread(target=issue, daemon=True)
        t.start()
        if not _wait_for(lambda: _poll_stats(probe)["inflight"] >= 1,
                         30.0, "work in flight"):
            res.fail("work never became in-flight")
            return res
        # initiate the drain (don't join yet — observe it live)
        dt._loop.call_soon_threadsafe(dt._stop.set)
        if not _wait_for(
                lambda: probe.request({"op": "ping"})["result"]["draining"],
                30.0, "daemon draining"):
            res.fail("daemon never reported draining")
            return res
        # new work during the drain: typed shutdown, never a hang or
        # a silent disconnect (the connection pre-dates the drain)
        res.requests += 1
        try:
            probe.request(_work(salt + 1, _FAST_ITERS))
            res.ok += 1
            res.fail("work admitted during drain")
        except ServiceError as exc:
            res.errors[exc.type] = res.errors.get(exc.type, 0) + 1
            if exc.type != "shutdown":
                res.fail(f"drain refused work with {exc.type!r}, "
                         f"not shutdown")
        except Exception as exc:  # noqa: BLE001
            res.errors["untyped"] = res.errors.get("untyped", 0) + 1
            res.fail(f"untyped refusal during drain: {exc}")
        # the in-flight request must be answered before the daemon exits
        t.join(SCENARIO_DEADLINE_S)
        res.requests += 1
        if t.is_alive():
            res.fail("drain abandoned in-flight work (waiter hung)")
        elif "resp" in outcome and outcome["resp"].get("ok"):
            res.ok += 1
        else:
            res.errors["untyped"] = res.errors.get("untyped", 0) + 1
            res.fail(f"in-flight work lost during drain: "
                     f"{outcome.get('err')}")
        res.distinct_results = 1  # single completion; nothing to diff
        client.close()
        probe.close()
    finally:
        dt.stop()
    res.oracle_ok = not res.notes
    _check_accounting(res)
    return res


_SCENARIOS: Dict[str, Callable[[int], ScenarioResult]] = {
    "overload-storm": _scenario_overload_storm,
    "slow-worker": _scenario_slow_worker,
    "conn-drop": _scenario_conn_drop,
    "worker-kill": _scenario_worker_kill,
    "daemon-sigterm": _scenario_daemon_sigterm,
}


def run_service_campaign(scenarios: Sequence[str] = SERVICE_SCENARIOS,
                         seed: int = 0) -> ServiceChaosReport:
    """Run the service chaos campaign (see module docstring).

    Each scenario boots its own daemon, applies its perturbation, and
    checks the service contract; a scenario raising instead of
    reporting is itself recorded as an oracle failure, so the campaign
    always returns a full matrix."""
    report = ServiceChaosReport(seed=seed)
    for name in scenarios:
        try:
            fn = _SCENARIOS[name]
        except KeyError:
            raise ValueError(
                f"unknown service scenario {name!r} (expected one of "
                f"{SERVICE_SCENARIOS})") from None
        try:
            result = fn(seed)
        except Exception as exc:  # noqa: BLE001 — keep the matrix whole
            result = ScenarioResult(name)
            result.fail(f"scenario crashed: {type(exc).__name__}: {exc}")
        report.results.append(result)
    return report
