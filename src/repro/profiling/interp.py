"""Reference interpreter for the mid-level IR.

The interpreter serves three roles in the reproduction:

1. **Profiling substrate** — it executes the program on a *train* input
   while :class:`Tracer` observers collect the alias profile (LOC sets per
   indirect reference and call site, §3.2.1), the edge profile (for control
   speculation) and the dynamic load-reuse numbers of Figure 12.
2. **Correctness oracle** — the observable output (``print``) of the
   optimized, simulated machine code must match the interpreter's output on
   the original IR; this is how the test suite checks that ALAT-checked data
   speculation never changes program semantics.
3. **Semantics definition** — C-like integer division/remainder (truncating
   toward zero), cell-addressed memory, array decay.

Memory model: a bump allocator hands out cell addresses for globals, for
address-taken locals/arrays (per frame) and for heap objects (per executed
``alloc``).  Every allocation is registered with its abstract memory
location (LOC) so tracers can map concrete addresses back to LOCs.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.locs import HeapLoc, Loc
from ..errors import FuelExhausted
from ..ir import (AddrOf, Assign, BasicBlock, Bin, CallStmt, CondBr, Const,
                  Expr, Function, Jump, Load, Module, PrintStmt, Return,
                  StorageKind, Store, Symbol, Un, VarRead)

Value = Union[int, float]


class InterpError(Exception):
    """Raised on a runtime error (bad address, missing main, fuel
    exhausted)."""


class InterpFuelExhausted(FuelExhausted, InterpError):
    """Fuel ran out in the reference interpreter.  Carries function +
    block context for the driver's diagnostics."""

    def __init__(self, function: str, block: str) -> None:
        super().__init__(
            f"fuel exhausted (infinite loop?) in {function} at block "
            f"{block}")
        self.function = function
        self.instruction = block


class Tracer:
    """Observer interface; all hooks are optional no-ops.

    ``site`` identities: indirect loads are identified by ``id(expr)``,
    stores by ``id(stmt)``, calls by ``stmt.site_id`` — the same keys the
    SSA construction uses, so profiles can be applied directly.
    """

    def on_load(self, fn: Function, expr: Load, addr: int, value: Value,
                loc: Optional[Loc], offset: int = 0) -> None:
        """An indirect load executed (``offset`` = cell within LOC)."""

    def on_store(self, fn: Function, stmt: Store, addr: int, value: Value,
                 loc: Optional[Loc], offset: int = 0) -> None:
        """An indirect store executed (``offset`` = cell within LOC)."""

    def on_scalar_read(self, fn: Function, sym: Symbol, value: Value) -> None:
        """A memory-resident scalar (global / address-taken) was read."""

    def on_edge(self, fn: Function, src: BasicBlock, dst: BasicBlock) -> None:
        """A CFG edge was traversed."""

    def on_call_enter(self, fn: Function, stmt: CallStmt) -> None:
        """A non-intrinsic call is about to execute (site active)."""

    def on_call_exit(self, fn: Function, stmt: CallStmt) -> None:
        """The call at ``stmt`` returned."""

    def on_function_enter(self, fn: Function) -> None:
        """A new invocation of ``fn`` began."""

    def on_function_exit(self, fn: Function) -> None:
        """The invocation returned."""


def c_div(a: Value, b: Value) -> Value:
    """C-style division: floats divide exactly, ints truncate toward 0."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_rem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise InterpError("integer remainder by zero")
    return a - c_div(a, b) * b


_BIN_FUNCS: Dict[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_rem,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


class _Frame:
    """One function invocation: register values + addresses of memory-
    resident locals."""

    __slots__ = ("fn", "regs", "addr_of")

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.regs: Dict[Symbol, Value] = {}
        self.addr_of: Dict[Symbol, int] = {}


class Interpreter:
    """Executes a module's ``main``; collects ``print`` output."""

    def __init__(
        self,
        module: Module,
        tracers: Sequence[Tracer] = (),
        fuel: int = 50_000_000,
    ) -> None:
        self.module = module
        self.tracers = list(tracers)
        self.fuel = fuel
        self.memory: Dict[int, Value] = {}
        self.output: List[str] = []
        self._next_addr = 16  # keep 0 as a recognizable null
        self._region_starts: List[int] = []
        self._regions: List[Tuple[int, int, Loc]] = []
        self._global_addr: Dict[Symbol, int] = {}
        self.inputs: List[Value] = []
        self._input_pos = 0
        self._allocate_globals()

    # ---- memory ---------------------------------------------------------
    def _allocate(self, cells: int, loc: Loc) -> int:
        base = self._next_addr
        self._next_addr += max(cells, 1) + 1  # +1 guard cell between objects
        for i in range(max(cells, 1)):
            self.memory[base + i] = 0
        self._region_starts.append(base)
        self._regions.append((base, base + max(cells, 1), loc))
        return base

    def _allocate_globals(self) -> None:
        for sym in self.module.globals:
            cells = sym.array_size if sym.is_array else 1
            self._global_addr[sym] = self._allocate(cells, sym)

    def loc_of_addr(self, addr: int) -> Optional[Loc]:
        """Map a concrete address to its LOC (None when out of range)."""
        found = self.loc_and_offset(addr)
        return found[0] if found is not None else None

    def loc_and_offset(self, addr: int):
        """Map an address to (LOC, offset within the LOC), or None.

        The offset enables sub-object LOC naming in the alias profiler
        (the granularity knob of Chen et al. [4] that the paper's §3.2.1
        references for heap objects).
        """
        index = bisect.bisect_right(self._region_starts, addr) - 1
        if index < 0:
            return None
        start, end, loc = self._regions[index]
        if start <= addr < end:
            return loc, addr - start
        return None

    def _read_mem(self, addr: int) -> Value:
        try:
            return self.memory[addr]
        except KeyError:
            raise InterpError(f"load from unallocated address {addr}") from None

    def _write_mem(self, addr: int, value: Value) -> None:
        if addr not in self.memory:
            raise InterpError(f"store to unallocated address {addr}")
        self.memory[addr] = value

    def _next_input(self) -> Value:
        if self._input_pos >= len(self.inputs):
            raise InterpError("input stream exhausted")
        value = self.inputs[self._input_pos]
        self._input_pos += 1
        return value

    # ---- running -----------------------------------------------------------
    def run(self) -> List[str]:
        """Execute ``main()``; returns the collected output lines."""
        if "main" not in self.module.functions:
            raise InterpError("module has no main()")
        self._call(self.module.functions["main"], [])
        return self.output

    def _call(self, fn: Function, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.params):
            raise InterpError(f"{fn.name}: arity mismatch")
        frame = _Frame(fn)
        for tracer in self.tracers:
            tracer.on_function_enter(fn)
        for sym in fn.locals:
            if sym.is_array:
                frame.addr_of[sym] = self._allocate(sym.array_size, sym)
            elif sym.address_taken:
                frame.addr_of[sym] = self._allocate(1, sym)
            else:
                frame.regs[sym] = 0
        for sym, value in zip(fn.params, args):
            if sym.address_taken:
                frame.addr_of[sym] = self._allocate(1, sym)
                self.memory[frame.addr_of[sym]] = value
            else:
                frame.regs[sym] = value

        block = fn.entry
        while True:
            for stmt in block.stmts:
                self._exec_stmt(frame, stmt)
            term = block.terminator
            assert term is not None
            self.fuel -= 1
            if self.fuel <= 0:
                raise InterpFuelExhausted(fn.name, block.name)
            if isinstance(term, Return):
                result = (
                    self._eval(frame, term.value)
                    if term.value is not None
                    else None
                )
                for tracer in self.tracers:
                    tracer.on_function_exit(fn)
                return result
            if isinstance(term, Jump):
                nxt = term.target
            elif isinstance(term, CondBr):
                cond = self._eval(frame, term.cond)
                nxt = term.then_block if cond else term.else_block
            else:  # pragma: no cover
                raise InterpError(f"unknown terminator {term!r}")
            for tracer in self.tracers:
                tracer.on_edge(fn, block, nxt)
            block = nxt

    # ---- statements -----------------------------------------------------
    def _exec_stmt(self, frame: _Frame, stmt) -> None:
        if isinstance(stmt, Assign):
            value = self._eval(frame, stmt.value)
            sym = stmt.sym
            if sym.kind is StorageKind.GLOBAL:
                self.memory[self._global_addr[sym]] = value
            elif sym in frame.addr_of:
                self.memory[frame.addr_of[sym]] = value
            else:
                frame.regs[sym] = value
        elif isinstance(stmt, Store):
            addr = int(self._eval(frame, stmt.addr))
            value = self._eval(frame, stmt.value)
            value = self._coerce(value, stmt.value_ty)
            self._write_mem(addr, value)
            found = self.loc_and_offset(addr)
            loc, offset = found if found is not None else (None, 0)
            for tracer in self.tracers:
                tracer.on_store(frame.fn, stmt, addr, value, loc, offset)
        elif isinstance(stmt, CallStmt):
            self._exec_call(frame, stmt)
        elif isinstance(stmt, PrintStmt):
            parts = [self._format(self._eval(frame, a)) for a in stmt.args]
            self.output.append(" ".join(parts))
        else:  # pragma: no cover
            raise InterpError(f"unknown statement {stmt!r}")

    def _exec_call(self, frame: _Frame, stmt: CallStmt) -> None:
        if stmt.callee in ("input", "inputf"):
            value = self._next_input()
            if stmt.callee == "inputf":
                value = float(value)
            else:
                value = int(value)
            if stmt.dst is not None:
                frame.regs[stmt.dst] = value
            return
        if stmt.is_alloc:
            size = int(self._eval(frame, stmt.args[0]))
            assert stmt.site_id is not None
            base = self._allocate(size, HeapLoc(stmt.site_id))
            if stmt.dst is not None:
                frame.regs[stmt.dst] = base
            return
        callee = self.module.functions[stmt.callee]
        args = [self._eval(frame, a) for a in stmt.args]
        for tracer in self.tracers:
            tracer.on_call_enter(frame.fn, stmt)
        result = self._call(callee, args)
        for tracer in self.tracers:
            tracer.on_call_exit(frame.fn, stmt)
        if stmt.dst is not None:
            if result is None:
                raise InterpError(f"void call result used: {stmt}")
            sym = stmt.dst
            if sym.kind is StorageKind.GLOBAL:
                self.memory[self._global_addr[sym]] = result
            elif sym in frame.addr_of:
                self.memory[frame.addr_of[sym]] = result
            else:
                frame.regs[sym] = result

    # ---- expressions ----------------------------------------------------
    def _eval(self, frame: _Frame, expr: Expr) -> Value:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, VarRead):
            return self._read_var(frame, expr.sym)
        if isinstance(expr, AddrOf):
            return self._addr_of(frame, expr.sym)
        if isinstance(expr, Load):
            addr = int(self._eval(frame, expr.addr))
            value = self._read_mem(addr)
            found = self.loc_and_offset(addr)
            loc, offset = found if found is not None else (None, 0)
            for tracer in self.tracers:
                tracer.on_load(frame.fn, expr, addr, value, loc, offset)
            return value
        if isinstance(expr, Bin):
            left = self._eval(frame, expr.left)
            right = self._eval(frame, expr.right)
            return _BIN_FUNCS[expr.op](left, right)
        if isinstance(expr, Un):
            operand = self._eval(frame, expr.operand)
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return int(not operand)
            if expr.op == "~":
                return ~int(operand)
            if expr.op == "int":
                return int(operand)
            if expr.op == "float":
                return float(operand)
        raise InterpError(f"unknown expression {expr!r}")  # pragma: no cover

    def _read_var(self, frame: _Frame, sym: Symbol) -> Value:
        if sym.is_array:
            return self._addr_of(frame, sym)
        if sym.kind is StorageKind.GLOBAL:
            value = self._read_mem(self._global_addr[sym])
            for tracer in self.tracers:
                tracer.on_scalar_read(frame.fn, sym, value)
            return value
        if sym in frame.addr_of:
            value = self._read_mem(frame.addr_of[sym])
            for tracer in self.tracers:
                tracer.on_scalar_read(frame.fn, sym, value)
            return value
        try:
            return frame.regs[sym]
        except KeyError:
            raise InterpError(
                f"{frame.fn.name}: read of uninitialized symbol {sym.name}"
            ) from None

    def _addr_of(self, frame: _Frame, sym: Symbol) -> int:
        if sym.kind is StorageKind.GLOBAL:
            return self._global_addr[sym]
        try:
            return frame.addr_of[sym]
        except KeyError:
            raise InterpError(
                f"{frame.fn.name}: address of register symbol {sym.name}"
            ) from None

    @staticmethod
    def _coerce(value: Value, ty) -> Value:
        if ty.is_float:
            return float(value)
        return value

    @staticmethod
    def _format(value: Value) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)


def run_module(module: Module, tracers: Sequence[Tracer] = (),
               fuel: int = 50_000_000,
               inputs: Sequence[Value] = ()) -> List[str]:
    """Convenience wrapper: interpret ``module`` and return its output."""
    interp = Interpreter(module, tracers, fuel)
    interp.inputs = list(inputs)
    return interp.run()
