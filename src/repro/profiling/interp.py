"""Reference interpreter for the mid-level IR.

The interpreter serves three roles in the reproduction:

1. **Profiling substrate** — it executes the program on a *train* input
   while :class:`Tracer` observers collect the alias profile (LOC sets per
   indirect reference and call site, §3.2.1), the edge profile (for control
   speculation) and the dynamic load-reuse numbers of Figure 12.
2. **Correctness oracle** — the observable output (``print``) of the
   optimized, simulated machine code must match the interpreter's output on
   the original IR; this is how the test suite checks that ALAT-checked data
   speculation never changes program semantics.
3. **Semantics definition** — C-like integer division/remainder (truncating
   toward zero), cell-addressed memory, array decay.

Memory model: a bump allocator hands out cell addresses for globals, for
address-taken locals/arrays (per frame) and for heap objects (per executed
``alloc``).  Every allocation is registered with its abstract memory
location (LOC) so tracers can map concrete addresses back to LOCs.

Execution model: instead of re-walking the IR tree per statement, each
function is flattened **once per interpreter** (on its first call) into a
graph of :class:`_CBlock` records whose statements and expressions are
pre-compiled Python closures.  The flattening resolves everything that is
static — operand storage class, binary/unary opcode, global addresses,
float coercions, whether any tracer is attached — so the per-execution
work is just calling the closures.  Observable behaviour (output, memory
layout, tracer event streams, error messages, fuel accounting) is
identical to the tree-walking evaluator this replaced; the wall-clock
difference is measured by ``benchmarks/test_compiler_perf.py``.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.locs import HeapLoc, Loc
from ..errors import FuelExhausted
from ..ir import (AddrOf, Assign, BasicBlock, Bin, CallStmt, CondBr, Const,
                  Expr, Function, Jump, Load, Module, PrintStmt, Return,
                  StorageKind, Store, Symbol, Un, VarRead)

Value = Union[int, float]


class InterpError(Exception):
    """Raised on a runtime error (bad address, missing main, fuel
    exhausted)."""


class InterpFuelExhausted(FuelExhausted, InterpError):
    """Fuel ran out in the reference interpreter.  Carries function +
    block context for the driver's diagnostics."""

    def __init__(self, function: str, block: str) -> None:
        super().__init__(
            f"fuel exhausted (infinite loop?) in {function} at block "
            f"{block}")
        self.function = function
        self.instruction = block


class Tracer:
    """Observer interface; all hooks are optional no-ops.

    ``site`` identities: indirect loads are identified by ``id(expr)``,
    stores by ``id(stmt)``, calls by ``stmt.site_id`` — the same keys the
    SSA construction uses, so profiles can be applied directly.
    """

    def on_load(self, fn: Function, expr: Load, addr: int, value: Value,
                loc: Optional[Loc], offset: int = 0) -> None:
        """An indirect load executed (``offset`` = cell within LOC)."""

    def on_store(self, fn: Function, stmt: Store, addr: int, value: Value,
                 loc: Optional[Loc], offset: int = 0) -> None:
        """An indirect store executed (``offset`` = cell within LOC)."""

    def on_scalar_read(self, fn: Function, sym: Symbol, value: Value) -> None:
        """A memory-resident scalar (global / address-taken) was read."""

    def on_scalar_write(self, fn: Function, sym: Symbol) -> None:
        """A memory-resident scalar (global / address-taken) was assigned
        to directly (``Assign``; indirect stores fire :meth:`on_store`)."""

    def on_edge(self, fn: Function, src: BasicBlock, dst: BasicBlock) -> None:
        """A CFG edge was traversed."""

    def on_call_enter(self, fn: Function, stmt: CallStmt) -> None:
        """A non-intrinsic call is about to execute (site active)."""

    def on_call_exit(self, fn: Function, stmt: CallStmt) -> None:
        """The call at ``stmt`` returned."""

    def on_function_enter(self, fn: Function) -> None:
        """A new invocation of ``fn`` began."""

    def on_function_exit(self, fn: Function) -> None:
        """The invocation returned."""


def c_div(a: Value, b: Value) -> Value:
    """C-style division: floats divide exactly, ints truncate toward 0."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_rem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend.  The quotient logic
    is ``c_div`` unfolded in place — ``rem`` is hot in the pointer-chasing
    workloads and the extra call showed up in simulator profiles."""
    if b == 0:
        raise InterpError("integer remainder by zero")
    if isinstance(a, float) or isinstance(b, float):
        return a - a / b * b
    q = abs(a) // abs(b)
    return a - (q if (a >= 0) == (b >= 0) else -q) * b


_BIN_FUNCS: Dict[str, Callable[[Value, Value], Value]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_rem,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}


class _Frame:
    """One function invocation: register values + addresses of memory-
    resident locals."""

    __slots__ = ("fn", "regs", "addr_of")

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.regs: Dict[Symbol, Value] = {}
        self.addr_of: Dict[Symbol, int] = {}


# _CBlock terminator kinds, hottest first in the dispatch chain.
_JUMP, _CONDBR, _RETURN, _BAD = range(4)


class _CBlock:
    """A basic block flattened to closures.  ``stmts`` are thunks taking
    the frame; the terminator is pre-decoded into ``kind`` plus direct
    references to successor ``_CBlock`` s (no name/dict lookups on the
    block-to-block transition)."""

    __slots__ = ("name", "block", "stmts", "kind", "value", "cond",
                 "target", "then_t", "else_t")

    def __init__(self, block: BasicBlock) -> None:
        self.name = block.name
        self.block = block
        self.stmts: Tuple[Callable[[_Frame], None], ...] = ()
        self.kind = _JUMP
        self.value = None   # Return value closure, or the bad terminator
        self.cond = None    # CondBr condition closure
        self.target = self  # Jump successor
        self.then_t = self  # CondBr successors
        self.else_t = self


class _CFunc:
    """A compiled function: entry block + the frame-setup plan."""

    __slots__ = ("entry", "local_plan", "param_plan")

    def __init__(self, entry: _CBlock,
                 local_plan: Tuple[Tuple[Symbol, int], ...],
                 param_plan: Tuple[Tuple[Symbol, bool], ...]) -> None:
        self.entry = entry
        self.local_plan = local_plan  # (sym, cells); 0 cells = register
        self.param_plan = param_plan  # (sym, address_taken)


class Interpreter:
    """Executes a module's ``main``; collects ``print`` output."""

    def __init__(
        self,
        module: Module,
        tracers: Sequence[Tracer] = (),
        fuel: int = 50_000_000,
    ) -> None:
        self.module = module
        self.tracers = list(tracers)
        self.fuel = fuel
        self.memory: Dict[int, Value] = {}
        self.output: List[str] = []
        self._next_addr = 16  # keep 0 as a recognizable null
        self._region_starts: List[int] = []
        self._regions: List[Tuple[int, int, Loc]] = []
        self._global_addr: Dict[Symbol, int] = {}
        self.inputs: List[Value] = []
        self._input_pos = 0
        self._compiled: Dict[Function, _CFunc] = {}
        self._allocate_globals()

    # ---- memory ---------------------------------------------------------
    def _allocate(self, cells: int, loc: Loc) -> int:
        base = self._next_addr
        self._next_addr += max(cells, 1) + 1  # +1 guard cell between objects
        for i in range(max(cells, 1)):
            self.memory[base + i] = 0
        self._region_starts.append(base)
        self._regions.append((base, base + max(cells, 1), loc))
        return base

    def _allocate_globals(self) -> None:
        for sym in self.module.globals:
            cells = sym.array_size if sym.is_array else 1
            self._global_addr[sym] = self._allocate(cells, sym)

    def loc_of_addr(self, addr: int) -> Optional[Loc]:
        """Map a concrete address to its LOC (None when out of range)."""
        found = self.loc_and_offset(addr)
        return found[0] if found is not None else None

    def loc_and_offset(self, addr: int):
        """Map an address to (LOC, offset within the LOC), or None.

        The offset enables sub-object LOC naming in the alias profiler
        (the granularity knob of Chen et al. [4] that the paper's §3.2.1
        references for heap objects).
        """
        index = bisect.bisect_right(self._region_starts, addr) - 1
        if index < 0:
            return None
        start, end, loc = self._regions[index]
        if start <= addr < end:
            return loc, addr - start
        return None

    def _read_mem(self, addr: int) -> Value:
        try:
            return self.memory[addr]
        except KeyError:
            raise InterpError(f"load from unallocated address {addr}") from None

    def _write_mem(self, addr: int, value: Value) -> None:
        if addr not in self.memory:
            raise InterpError(f"store to unallocated address {addr}")
        self.memory[addr] = value

    def _next_input(self) -> Value:
        if self._input_pos >= len(self.inputs):
            raise InterpError("input stream exhausted")
        value = self.inputs[self._input_pos]
        self._input_pos += 1
        return value

    # ---- running ---------------------------------------------------------
    def run(self) -> List[str]:
        """Execute ``main()``; returns the collected output lines."""
        if "main" not in self.module.functions:
            raise InterpError("module has no main()")
        self._call(self.module.functions["main"], [])
        return self.output

    def _call(self, fn: Function, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.params):
            raise InterpError(f"{fn.name}: arity mismatch")
        cfn = self._compiled.get(fn)
        if cfn is None:
            cfn = self._compiled[fn] = self._compile_fn(fn)
        frame = _Frame(fn)
        tracers = self.tracers
        for tracer in tracers:
            tracer.on_function_enter(fn)
        regs = frame.regs
        addr_of = frame.addr_of
        for sym, cells in cfn.local_plan:
            if cells:
                addr_of[sym] = self._allocate(cells, sym)
            else:
                regs[sym] = 0
        for (sym, taken), value in zip(cfn.param_plan, args):
            if taken:
                addr = addr_of[sym] = self._allocate(1, sym)
                self.memory[addr] = value
            else:
                regs[sym] = value

        cb = cfn.entry
        if tracers:
            while True:
                for thunk in cb.stmts:
                    thunk(frame)
                self.fuel -= 1
                if self.fuel <= 0:
                    raise InterpFuelExhausted(fn.name, cb.name)
                kind = cb.kind
                if kind == _JUMP:
                    nxt = cb.target
                elif kind == _CONDBR:
                    nxt = cb.then_t if cb.cond(frame) else cb.else_t
                elif kind == _RETURN:
                    value = cb.value
                    result = value(frame) if value is not None else None
                    for tracer in tracers:
                        tracer.on_function_exit(fn)
                    return result
                else:  # pragma: no cover
                    raise InterpError(f"unknown terminator {cb.value!r}")
                for tracer in tracers:
                    tracer.on_edge(fn, cb.block, nxt.block)
                cb = nxt
        while True:
            for thunk in cb.stmts:
                thunk(frame)
            self.fuel -= 1
            if self.fuel <= 0:
                raise InterpFuelExhausted(fn.name, cb.name)
            kind = cb.kind
            if kind == _JUMP:
                cb = cb.target
            elif kind == _CONDBR:
                cb = cb.then_t if cb.cond(frame) else cb.else_t
            elif kind == _RETURN:
                value = cb.value
                return value(frame) if value is not None else None
            else:  # pragma: no cover
                raise InterpError(f"unknown terminator {cb.value!r}")

    # ---- function flattening ----------------------------------------------
    def _compile_fn(self, fn: Function) -> _CFunc:
        local_plan = tuple(
            (sym, sym.array_size if sym.is_array
             else (1 if sym.address_taken else 0))
            for sym in fn.locals)
        param_plan = tuple((sym, bool(sym.address_taken))
                           for sym in fn.params)
        cblocks: Dict[BasicBlock, _CBlock] = {}
        worklist: List[BasicBlock] = []

        def get(block: BasicBlock) -> _CBlock:
            cb = cblocks.get(block)
            if cb is None:
                cb = cblocks[block] = _CBlock(block)
                worklist.append(block)
            return cb

        entry = get(fn.entry)
        while worklist:
            block = worklist.pop()
            cb = cblocks[block]
            stmts = [self._compile_stmt(fn, s) for s in block.stmts]
            term = block.terminator
            if term is None:
                # Fires after the statements, before the fuel charge —
                # exactly where the tree-walker's assert sat.
                def no_term(frame):
                    raise AssertionError("block has no terminator")
                stmts.append(no_term)
            elif isinstance(term, Return):
                cb.kind = _RETURN
                cb.value = (self._compile_expr(fn, term.value)
                            if term.value is not None else None)
            elif isinstance(term, Jump):
                cb.kind = _JUMP
                cb.target = get(term.target)
            elif isinstance(term, CondBr):
                cb.kind = _CONDBR
                cb.cond = self._compile_expr(fn, term.cond)
                cb.then_t = get(term.then_block)
                cb.else_t = get(term.else_block)
            else:  # pragma: no cover
                cb.kind = _BAD
                cb.value = term  # reported after the fuel charge
            cb.stmts = tuple(stmts)
        return _CFunc(entry, local_plan, param_plan)

    # ---- statements -------------------------------------------------------
    def _compile_stmt(self, fn: Function,
                      stmt) -> Callable[[_Frame], None]:
        tracers = self.tracers
        memory = self.memory
        if isinstance(stmt, Assign):
            value_c = self._compile_expr(fn, stmt.value)
            sym = stmt.sym
            if sym.kind is StorageKind.GLOBAL:
                addr = self._global_addr[sym]
                if tracers:
                    def assign_g(frame, value_c=value_c, addr=addr, sym=sym):
                        value = value_c(frame)
                        memory[addr] = value
                        for tracer in tracers:
                            tracer.on_scalar_write(fn, sym)
                    return assign_g
                def assign_g(frame, value_c=value_c, addr=addr):
                    memory[addr] = value_c(frame)
                return assign_g
            if sym.is_array or sym.address_taken:
                if tracers:
                    def assign_m(frame, value_c=value_c, sym=sym):
                        value = value_c(frame)
                        memory[frame.addr_of[sym]] = value
                        for tracer in tracers:
                            tracer.on_scalar_write(fn, sym)
                    return assign_m
                def assign_m(frame, value_c=value_c, sym=sym):
                    memory[frame.addr_of[sym]] = value_c(frame)
                return assign_m
            def assign_r(frame, value_c=value_c, sym=sym):
                frame.regs[sym] = value_c(frame)
            return assign_r
        if isinstance(stmt, Store):
            addr_c = self._compile_expr(fn, stmt.addr)
            value_c = self._compile_expr(fn, stmt.value)
            to_float = stmt.value_ty.is_float
            if tracers:
                loc_and_offset = self.loc_and_offset

                def store_t(frame, addr_c=addr_c, value_c=value_c,
                            to_float=to_float, stmt=stmt):
                    addr = int(addr_c(frame))
                    value = value_c(frame)
                    if to_float:
                        value = float(value)
                    if addr not in memory:
                        raise InterpError(
                            f"store to unallocated address {addr}")
                    memory[addr] = value
                    found = loc_and_offset(addr)
                    loc, offset = found if found is not None else (None, 0)
                    for tracer in tracers:
                        tracer.on_store(fn, stmt, addr, value, loc, offset)
                return store_t

            def store(frame, addr_c=addr_c, value_c=value_c,
                      to_float=to_float):
                addr = int(addr_c(frame))
                value = value_c(frame)
                if to_float:
                    value = float(value)
                if addr not in memory:
                    raise InterpError(f"store to unallocated address {addr}")
                memory[addr] = value
            return store
        if isinstance(stmt, CallStmt):
            return self._compile_call(fn, stmt)
        if isinstance(stmt, PrintStmt):
            arg_cs = tuple(self._compile_expr(fn, a) for a in stmt.args)
            output = self.output
            fmt = self._format

            def print_(frame, arg_cs=arg_cs):
                output.append(" ".join(fmt(c(frame)) for c in arg_cs))
            return print_

        def bad_stmt(frame, stmt=stmt):  # pragma: no cover
            raise InterpError(f"unknown statement {stmt!r}")
        return bad_stmt

    def _compile_call(self, fn: Function,
                      stmt: CallStmt) -> Callable[[_Frame], None]:
        tracers = self.tracers
        memory = self.memory
        dst = stmt.dst
        if stmt.callee in ("input", "inputf"):
            conv = float if stmt.callee == "inputf" else int
            next_input = self._next_input

            def input_(frame, conv=conv, dst=dst):
                value = conv(next_input())
                if dst is not None:
                    frame.regs[dst] = value
            return input_
        if stmt.is_alloc:
            size_c = self._compile_expr(fn, stmt.args[0])
            site_id = stmt.site_id
            allocate = self._allocate

            def alloc(frame, size_c=size_c, site_id=site_id, dst=dst):
                size = int(size_c(frame))
                assert site_id is not None
                base = allocate(size, HeapLoc(site_id))
                if dst is not None:
                    frame.regs[dst] = base
            return alloc
        arg_cs = tuple(self._compile_expr(fn, a) for a in stmt.args)
        functions = self.module.functions
        name = stmt.callee
        call = self._call
        # Pre-decode the destination write (same classes as Assign; direct
        # scalar writes of call results fire no hook — call_mod already
        # includes the callee's effects).
        if dst is None:
            write = None
        elif dst.kind is StorageKind.GLOBAL:
            dst_addr = self._global_addr[dst]

            def write(frame, result, dst_addr=dst_addr):
                memory[dst_addr] = result
        elif dst.is_array or dst.address_taken:
            def write(frame, result, dst=dst):
                memory[frame.addr_of[dst]] = result
        else:
            def write(frame, result, dst=dst):
                frame.regs[dst] = result

        if tracers:
            def call_t(frame, arg_cs=arg_cs, name=name, stmt=stmt,
                       write=write):
                callee = functions[name]
                args = [c(frame) for c in arg_cs]
                for tracer in tracers:
                    tracer.on_call_enter(fn, stmt)
                result = call(callee, args)
                for tracer in tracers:
                    tracer.on_call_exit(fn, stmt)
                if write is not None:
                    if result is None:
                        raise InterpError(f"void call result used: {stmt}")
                    write(frame, result)
            return call_t

        def call_(frame, arg_cs=arg_cs, name=name, stmt=stmt, write=write):
            callee = functions[name]
            args = [c(frame) for c in arg_cs]
            result = call(callee, args)
            if write is not None:
                if result is None:
                    raise InterpError(f"void call result used: {stmt}")
                write(frame, result)
        return call_

    # ---- expressions --------------------------------------------------------
    def _compile_expr(self, fn: Function,
                      expr: Expr) -> Callable[[_Frame], Value]:
        tracers = self.tracers
        memory = self.memory
        if isinstance(expr, Const):
            value = expr.value

            def const(frame, value=value):
                return value
            return const
        if isinstance(expr, VarRead):
            sym = expr.sym
            if sym.is_array:
                return self._compile_addr_of(fn, sym)
            if sym.kind is StorageKind.GLOBAL:
                addr = self._global_addr[sym]
                if tracers:
                    def read_g(frame, addr=addr, sym=sym):
                        value = memory[addr]
                        for tracer in tracers:
                            tracer.on_scalar_read(fn, sym, value)
                        return value
                    return read_g

                def read_g(frame, addr=addr):
                    return memory[addr]
                return read_g
            if sym.address_taken:
                if tracers:
                    def read_m(frame, sym=sym):
                        value = memory[frame.addr_of[sym]]
                        for tracer in tracers:
                            tracer.on_scalar_read(fn, sym, value)
                        return value
                    return read_m

                def read_m(frame, sym=sym):
                    return memory[frame.addr_of[sym]]
                return read_m

            def read_r(frame, sym=sym):
                try:
                    return frame.regs[sym]
                except KeyError:
                    raise InterpError(
                        f"{frame.fn.name}: read of uninitialized symbol "
                        f"{sym.name}") from None
            return read_r
        if isinstance(expr, AddrOf):
            return self._compile_addr_of(fn, expr.sym)
        if isinstance(expr, Load):
            addr_c = self._compile_expr(fn, expr.addr)
            if tracers:
                loc_and_offset = self.loc_and_offset

                def load_t(frame, addr_c=addr_c, expr=expr):
                    addr = int(addr_c(frame))
                    try:
                        value = memory[addr]
                    except KeyError:
                        raise InterpError(
                            f"load from unallocated address {addr}"
                        ) from None
                    found = loc_and_offset(addr)
                    loc, offset = found if found is not None else (None, 0)
                    for tracer in tracers:
                        tracer.on_load(fn, expr, addr, value, loc, offset)
                    return value
                return load_t

            def load(frame, addr_c=addr_c):
                addr = int(addr_c(frame))
                try:
                    return memory[addr]
                except KeyError:
                    raise InterpError(
                        f"load from unallocated address {addr}") from None
            return load
        if isinstance(expr, Bin):
            left_c = self._compile_expr(fn, expr.left)
            right_c = self._compile_expr(fn, expr.right)
            op = expr.op
            if op == "+":
                return lambda frame: left_c(frame) + right_c(frame)
            if op == "-":
                return lambda frame: left_c(frame) - right_c(frame)
            if op == "*":
                return lambda frame: left_c(frame) * right_c(frame)
            if op == "<":
                return lambda frame: int(left_c(frame) < right_c(frame))
            if op == "<=":
                return lambda frame: int(left_c(frame) <= right_c(frame))
            if op == ">":
                return lambda frame: int(left_c(frame) > right_c(frame))
            if op == ">=":
                return lambda frame: int(left_c(frame) >= right_c(frame))
            if op == "==":
                return lambda frame: int(left_c(frame) == right_c(frame))
            if op == "!=":
                return lambda frame: int(left_c(frame) != right_c(frame))
            if op == "/":
                return lambda frame: c_div(left_c(frame), right_c(frame))
            if op == "%":
                return lambda frame: c_rem(left_c(frame), right_c(frame))
            bin_fn = _BIN_FUNCS.get(op)
            if bin_fn is not None:
                return lambda frame: bin_fn(left_c(frame), right_c(frame))

            def bad_bin(frame, op=op):  # pragma: no cover
                left = left_c(frame)
                right = right_c(frame)
                return _BIN_FUNCS[op](left, right)  # KeyError, like the
            return bad_bin                          # tree-walker's lookup
        if isinstance(expr, Un):
            operand_c = self._compile_expr(fn, expr.operand)
            op = expr.op
            if op == "-":
                return lambda frame: -operand_c(frame)
            if op == "!":
                return lambda frame: int(not operand_c(frame))
            if op == "~":
                return lambda frame: ~int(operand_c(frame))
            if op == "int":
                return lambda frame: int(operand_c(frame))
            if op == "float":
                return lambda frame: float(operand_c(frame))

            def bad_un(frame, expr=expr):  # pragma: no cover
                operand_c(frame)
                raise InterpError(f"unknown expression {expr!r}")
            return bad_un

        def bad_expr(frame, expr=expr):  # pragma: no cover
            raise InterpError(f"unknown expression {expr!r}")
        return bad_expr

    def _compile_addr_of(self, fn: Function,
                         sym: Symbol) -> Callable[[_Frame], int]:
        if sym.kind is StorageKind.GLOBAL:
            addr = self._global_addr[sym]

            def addr_g(frame, addr=addr):
                return addr
            return addr_g

        def addr_l(frame, sym=sym):
            try:
                return frame.addr_of[sym]
            except KeyError:
                raise InterpError(
                    f"{frame.fn.name}: address of register symbol "
                    f"{sym.name}") from None
        return addr_l

    @staticmethod
    def _coerce(value: Value, ty) -> Value:
        if ty.is_float:
            return float(value)
        return value

    @staticmethod
    def _format(value: Value) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)


def run_module(module: Module, tracers: Sequence[Tracer] = (),
               fuel: int = 50_000_000,
               inputs: Sequence[Value] = ()) -> List[str]:
    """Convenience wrapper: interpret ``module`` and return its output."""
    interp = Interpreter(module, tracers, fuel)
    interp.inputs = list(inputs)
    return interp.run()
