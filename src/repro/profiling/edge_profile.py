"""Edge profiling for control speculation.

SSAPRE's control speculation (Lo et al. [25], used unchanged by the paper)
inserts computations on paths where the expression is *not* down-safe; the
edge profile decides when that gamble pays off.  The profiler counts every
CFG edge traversal and derives block execution frequencies.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple

from ..ir import BasicBlock, Function, Module
from .interp import Interpreter, Tracer


class _VersionedCounter(Counter):
    """A Counter that stamps a version on every mutation.

    :meth:`EdgeProfile.prob` normalizes by the sum of ``src``'s outgoing
    traversal counts; memoizing those sums is only sound while the
    underlying counts stand still.  Rather than hooking every call site
    that bumps a counter (the profiler, tests poking counts directly),
    the counter itself versions its writes and the derived cache
    compares versions lazily on read."""

    def __init__(self, *args, **kwargs) -> None:
        self.version = 0
        super().__init__(*args, **kwargs)

    def __setitem__(self, key, value) -> None:
        self.version += 1
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        self.version += 1
        super().__delitem__(key)

    def clear(self) -> None:
        self.version += 1
        super().clear()

    def update(self, *args, **kwargs) -> None:
        self.version += 1
        super().update(*args, **kwargs)

    def subtract(self, *args, **kwargs) -> None:
        self.version += 1
        super().subtract(*args, **kwargs)

    def pop(self, *args):
        self.version += 1
        return super().pop(*args)

    def popitem(self):
        self.version += 1
        return super().popitem()

    def setdefault(self, key, default=None):
        self.version += 1
        return super().setdefault(key, default)


class EdgeProfile:
    """Edge and block execution counts, per function.

    Counts are kept under two keys: block/edge ``uid`` s (for the
    SSAPRE passes, which run on the very module the profile was
    collected on) and ``(function name, block name)`` (for the machine
    level — out-of-SSA rebuilds every block, so only names survive to
    codegen; see :mod:`repro.target.superblock`)."""

    def __init__(self) -> None:
        self.edge_count: Counter = _VersionedCounter()
        self.block_count: Counter = Counter()
        self.entry_count: Counter = Counter()
        #: ``(fn name, src block name, dst block name) -> traversals``
        self.edge_name_count: Counter = Counter()
        #: ``(fn name, block name) -> executions``
        self.block_name_count: Counter = Counter()
        #: memoized :meth:`prob` denominators, keyed by the branch
        #: point and its successor list; valid for one edge_count
        #: version (SSAPRE queries every edge of a hot branch many
        #: times over, against a profile that no longer changes)
        self._out_totals: Dict[tuple, int] = {}
        self._out_totals_version: int = -1

    def edge(self, src: BasicBlock, dst: BasicBlock) -> int:
        return self.edge_count.get((src.uid, dst.uid), 0)

    def block(self, block: BasicBlock) -> int:
        return self.block_count.get(block.uid, 0)

    def freq(self, block: BasicBlock) -> float:
        """Raw execution count of ``block`` as a float — **not**
        normalized (0.0 when never executed).  The speculation engine
        compares sums of these, where exact integer-valued counts avoid
        rounding-dependent ties; use :meth:`prob` when a normalized
        branch probability is wanted."""
        return float(self.block(block))

    def prob(self, src: BasicBlock, dst: BasicBlock) -> float:
        """Branch probability of the CFG edge ``src -> dst``: the
        edge's traversal count over all of ``src``'s outgoing
        traversals.  When ``src`` was never executed (a 0-count
        fallback) the probability is split uniformly over its
        successors; an edge that is not in ``src.succs`` at all has
        probability 0.0."""
        succs = list(src.succs)
        if dst not in succs:
            return 0.0
        counts = self.edge_count
        if counts.version != self._out_totals_version:
            self._out_totals.clear()
            self._out_totals_version = counts.version
        key = (src.uid, tuple(s.uid for s in succs))
        total = self._out_totals.get(key)
        if total is None:
            total = sum(counts.get((src.uid, s.uid), 0) for s in succs)
            self._out_totals[key] = total
        if total == 0:
            return 1.0 / len(succs)
        return self.edge(src, dst) / total

    # ---- name-keyed views (survive out-of-SSA; machine level) ----------
    def block_by_name(self, fn_name: str, block_name: str) -> int:
        return self.block_name_count.get((fn_name, block_name), 0)

    def edge_by_name(self, fn_name: str, src_name: str,
                     dst_name: str) -> int:
        return self.edge_name_count.get((fn_name, src_name, dst_name), 0)

    def has_function(self, fn_name: str) -> bool:
        """Whether the train run entered ``fn_name`` at all."""
        return self.entry_count.get(fn_name, 0) > 0


class EdgeProfiler(Tracer):
    """Tracer building an :class:`EdgeProfile`."""

    def __init__(self) -> None:
        self.profile = EdgeProfile()

    def on_function_enter(self, fn: Function) -> None:
        self.profile.entry_count[fn.name] += 1
        self.profile.block_count[fn.entry.uid] += 1
        self.profile.block_name_count[(fn.name, fn.entry.name)] += 1

    def on_edge(self, fn: Function, src: BasicBlock, dst: BasicBlock) -> None:
        self.profile.edge_count[(src.uid, dst.uid)] += 1
        self.profile.block_count[dst.uid] += 1
        self.profile.edge_name_count[(fn.name, src.name, dst.name)] += 1
        self.profile.block_name_count[(fn.name, dst.name)] += 1


def collect_edge_profile(module: Module, fuel: int = 50_000_000,
                         inputs=()) -> EdgeProfile:
    """Run ``main`` on the *train* input; collect edge/block counts."""
    profiler = EdgeProfiler()
    interp = Interpreter(module, [profiler], fuel=fuel)
    interp.inputs = list(inputs)
    interp.run()
    return profiler.profile
