"""Edge profiling for control speculation.

SSAPRE's control speculation (Lo et al. [25], used unchanged by the paper)
inserts computations on paths where the expression is *not* down-safe; the
edge profile decides when that gamble pays off.  The profiler counts every
CFG edge traversal and derives block execution frequencies.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple

from ..ir import BasicBlock, Function, Module
from .interp import Interpreter, Tracer


class EdgeProfile:
    """Edge and block execution counts, per function."""

    def __init__(self) -> None:
        self.edge_count: Counter = Counter()
        self.block_count: Counter = Counter()
        self.entry_count: Counter = Counter()

    def edge(self, src: BasicBlock, dst: BasicBlock) -> int:
        return self.edge_count.get((src.uid, dst.uid), 0)

    def block(self, block: BasicBlock) -> int:
        return self.block_count.get(block.uid, 0)

    def freq(self, block: BasicBlock) -> float:
        """Block count; 0.0 when never executed."""
        return float(self.block(block))


class EdgeProfiler(Tracer):
    """Tracer building an :class:`EdgeProfile`."""

    def __init__(self) -> None:
        self.profile = EdgeProfile()

    def on_function_enter(self, fn: Function) -> None:
        self.profile.entry_count[fn.name] += 1
        self.profile.block_count[fn.entry.uid] += 1

    def on_edge(self, fn: Function, src: BasicBlock, dst: BasicBlock) -> None:
        self.profile.edge_count[(src.uid, dst.uid)] += 1
        self.profile.block_count[dst.uid] += 1


def collect_edge_profile(module: Module, fuel: int = 50_000_000,
                         inputs=()) -> EdgeProfile:
    """Run ``main`` on the *train* input; collect edge/block counts."""
    profiler = EdgeProfiler()
    interp = Interpreter(module, [profiler], fuel=fuel)
    interp.inputs = list(inputs)
    interp.run()
    return profiler.profile
