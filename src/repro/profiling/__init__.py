"""Profiling substrates: reference interpreter, alias profiler, edge
profiler and the Figure-12 load-reuse simulation."""

from .alias_profile import (AliasProfile, AliasProfiler,
                            collect_alias_profile)
from .edge_profile import EdgeProfile, EdgeProfiler, collect_edge_profile
from .interp import InterpError, Interpreter, Tracer, c_div, c_rem, run_module
from .load_reuse import (LoadReuseSimulator, LoadReuseStats,
                         simulate_load_reuse)

__all__ = [
    "AliasProfile", "AliasProfiler", "EdgeProfile", "EdgeProfiler",
    "InterpError", "Interpreter", "LoadReuseSimulator", "LoadReuseStats",
    "Tracer", "c_div", "c_rem", "collect_alias_profile",
    "collect_edge_profile", "run_module", "simulate_load_reuse",
]
