"""Dynamic load-reuse simulation — Figure 12's first method.

The paper estimates the *potential* of speculative register promotion with a
simulation (after Bodík et al. [2]): memory references with identical names
(scalars) or identical syntax trees (indirect references) form equivalence
classes; a load is counted *redundant* when it loads the same value from the
same address as the previous load of its class within the same procedure
invocation.  Every such redundant load could in principle have been
speculatively promoted to a register (with a check instruction replacing
it).

This module implements the simulation as an interpreter tracer and reports
``redundant / total`` dynamic loads.  "Loads" counts indirect loads plus
memory-resident scalar reads (globals and address-taken locals), matching
what the machine simulator retires as load instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.locs import Loc
from ..ir import Function, Load, Module, Symbol, syntax_key
from .interp import Interpreter, Tracer, Value


@dataclass
class LoadReuseStats:
    """Result of the load-reuse simulation."""

    total_loads: int = 0
    redundant_loads: int = 0

    @property
    def reuse_fraction(self) -> float:
        if self.total_loads == 0:
            return 0.0
        return self.redundant_loads / self.total_loads


class LoadReuseSimulator(Tracer):
    """Tracks last (address, value) per equivalence class per invocation.

    Invocations are tracked with a stack; each function entry pushes a fresh
    class table, so reuse never crosses procedure invocations (paper §5.3:
    "within the same procedure invocation").
    """

    def __init__(self) -> None:
        self.stats = LoadReuseStats()
        self._stack: List[Dict[object, Tuple[int, Value]]] = [{}]
        self._syntax_cache: Dict[int, object] = {}

    def _class_key(self, expr: Load) -> object:
        key = self._syntax_cache.get(id(expr))
        if key is None:
            key = ("load", syntax_key(expr))
            self._syntax_cache[id(expr)] = key
        return key

    def on_function_enter(self, fn: Function) -> None:
        self._stack.append({})

    def on_function_exit(self, fn: Function) -> None:
        self._stack.pop()

    def on_load(self, fn: Function, expr: Load, addr: int, value: Value,
                loc: Optional[Loc], offset: int = 0) -> None:
        self._note(self._class_key(expr), addr, value)

    def on_scalar_read(self, fn: Function, sym: Symbol, value: Value) -> None:
        # Scalars: classes are per-name; the "address" is the symbol itself
        # (one live instance per invocation frame suffices for equality).
        self._note(("scalar", sym.uid), sym.uid, value)

    def _note(self, key: object, addr: int, value: Value) -> None:
        table = self._stack[-1]
        self.stats.total_loads += 1
        last = table.get(key)
        if last is not None and last[0] == addr and last[1] == value:
            self.stats.redundant_loads += 1
        table[key] = (addr, value)


def simulate_load_reuse(module: Module, fuel: int = 50_000_000,
                        inputs=()) -> LoadReuseStats:
    """Run ``main`` under the load-reuse simulation."""
    sim = LoadReuseSimulator()
    interp = Interpreter(module, [sim], fuel=fuel)
    interp.inputs = list(inputs)
    interp.run()
    return sim.stats
