"""Alias profiling (paper §3.2.1).

For every indirect memory reference the profiler records the set of abstract
memory locations (LOCs) it actually accessed at runtime, and for every call
site the sets of LOCs modified / referenced during the call (including
nested calls).  This is the paper's "lower cost alias profiling scheme": it
observes LOC-granular access sets instead of comparing every reference pair
(Wu et al.'s invalidation profiling).

The resulting :class:`AliasProfile` is consumed by
:mod:`repro.ssa.spec` to attach speculation flags to µ/χ operands:
an alias relation observed during profiling is *highly likely*; one never
observed is speculatively ignorable.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Set

from ..analysis.locs import Loc
from ..ir import BasicBlock, CallStmt, Function, Load, Module, Store, Symbol
from .interp import Interpreter, Tracer, Value


class AliasProfile:
    """Profiled LOC sets.

    Keys: indirect loads by ``id(expr)``, stores by ``id(stmt)``, call sites
    by ``stmt.site_id``.  Counters keep observation counts so thresholded
    flagging ("likely" = observed in ≥ ``threshold`` fraction of executions)
    can be studied as an ablation; the paper's rule is plain membership.
    """

    def __init__(self, granularity: int = 8) -> None:
        #: sub-object LOC naming granularity, in cells (Chen et al. [4])
        self.granularity = max(1, granularity)
        self.load_locs: Dict[int, Counter] = defaultdict(Counter)
        self.store_locs: Dict[int, Counter] = defaultdict(Counter)
        #: finer-grained (LOC, block) observations for vvar flagging
        #: (Counters: observation counts enable likeliness thresholds)
        self.load_sublocs: Dict[int, Counter] = defaultdict(Counter)
        self.store_sublocs: Dict[int, Counter] = defaultdict(Counter)
        self.load_count: Counter = Counter()
        self.store_count: Counter = Counter()
        self.call_mod: Dict[int, Set[Loc]] = defaultdict(set)
        self.call_ref: Dict[int, Set[Loc]] = defaultdict(set)
        self.call_mod_sub: Dict[int, Set[tuple]] = defaultdict(set)
        self.call_ref_sub: Dict[int, Set[tuple]] = defaultdict(set)

    # ---- queries used by speculation-flag assignment -------------------
    def load_loc_set(self, expr: Load) -> Set[Loc]:
        """LOCs the load accessed during profiling (empty if never
        executed)."""
        return set(self.load_locs.get(id(expr), ()))

    def store_loc_set(self, stmt: Store) -> Set[Loc]:
        return set(self.store_locs.get(id(stmt), ()))

    def load_subloc_set(self, expr: Load,
                        threshold: float = 0.0) -> Set[tuple]:
        """Block-granular LOC set of a load (for vvar flagging).

        With ``threshold`` > 0, sub-LOCs observed in fewer than that
        fraction of the site's executions are dropped — the §3.1
        "degree of likeliness" knob (rare collisions become speculative
        weak updates, trading bounded mis-speculation for coverage).
        """
        return self._thresholded(self.load_sublocs.get(id(expr)),
                                 self.load_count.get(id(expr), 0),
                                 threshold)

    def store_subloc_set(self, stmt: Store,
                         threshold: float = 0.0) -> Set[tuple]:
        return self._thresholded(self.store_sublocs.get(id(stmt)),
                                 self.store_count.get(id(stmt), 0),
                                 threshold)

    @staticmethod
    def _thresholded(counter, executions: int,
                     threshold: float) -> Set[tuple]:
        if not counter:
            return set()
        if threshold <= 0.0 or executions <= 0:
            return set(counter)
        cutoff = threshold * executions
        return {k for k, n in counter.items() if n >= cutoff}

    def call_mod_subloc_set(self, stmt: CallStmt) -> Set[tuple]:
        if stmt.site_id is None:
            return set()
        return self.call_mod_sub.get(stmt.site_id, set())

    def call_ref_subloc_set(self, stmt: CallStmt) -> Set[tuple]:
        if stmt.site_id is None:
            return set()
        return self.call_ref_sub.get(stmt.site_id, set())

    def store_executed(self, stmt: Store) -> bool:
        return self.store_count.get(id(stmt), 0) > 0

    def load_executed(self, expr: Load) -> bool:
        return self.load_count.get(id(expr), 0) > 0

    def call_mod_set(self, stmt: CallStmt) -> Set[Loc]:
        if stmt.site_id is None:
            return set()
        return self.call_mod.get(stmt.site_id, set())

    def call_ref_set(self, stmt: CallStmt) -> Set[Loc]:
        if stmt.site_id is None:
            return set()
        return self.call_ref.get(stmt.site_id, set())


class AliasProfiler(Tracer):
    """Tracer that builds an :class:`AliasProfile` during interpretation."""

    def __init__(self, granularity: int = 8) -> None:
        self.profile = AliasProfile(granularity)
        #: call sites currently on the dynamic call stack
        self._active_sites: List[int] = []

    def _sub(self, loc: Loc, offset: int) -> tuple:
        return (loc, offset // self.profile.granularity)

    def on_load(self, fn: Function, expr: Load, addr: int, value: Value,
                loc: Optional[Loc], offset: int = 0) -> None:
        self.profile.load_count[id(expr)] += 1
        if loc is not None:
            sub = self._sub(loc, offset)
            self.profile.load_locs[id(expr)][loc] += 1
            self.profile.load_sublocs[id(expr)][sub] += 1
            for site in self._active_sites:
                self.profile.call_ref[site].add(loc)
                self.profile.call_ref_sub[site].add(sub)

    def on_store(self, fn: Function, stmt: Store, addr: int, value: Value,
                 loc: Optional[Loc], offset: int = 0) -> None:
        self.profile.store_count[id(stmt)] += 1
        if loc is not None:
            sub = self._sub(loc, offset)
            self.profile.store_locs[id(stmt)][loc] += 1
            self.profile.store_sublocs[id(stmt)][sub] += 1
            for site in self._active_sites:
                self.profile.call_mod[site].add(loc)
                self.profile.call_mod_sub[site].add(sub)

    def on_scalar_read(self, fn: Function, sym: Symbol, value: Value) -> None:
        for site in self._active_sites:
            self.profile.call_ref[site].add(sym)
            self.profile.call_ref_sub[site].add((sym, 0))

    def on_call_enter(self, fn: Function, stmt: CallStmt) -> None:
        if stmt.site_id is not None:
            self._active_sites.append(stmt.site_id)
            # Materialize the entry so never-touching calls still record
            # (empty) mod/ref sets distinct from "never executed".
            self.profile.call_mod[stmt.site_id] |= set()
            self.profile.call_ref[stmt.site_id] |= set()

    def on_call_exit(self, fn: Function, stmt: CallStmt) -> None:
        if stmt.site_id is not None:
            self._active_sites.pop()

    # Direct scalar *writes* inside callees: Assign to globals /
    # address-taken locals also modifies a LOC.  The interpreter fires
    # ``on_scalar_write`` for exactly those assignments.
    def on_scalar_write(self, fn: Function, sym: Symbol) -> None:
        for site in self._active_sites:
            self.profile.call_mod[site].add(sym)
            self.profile.call_mod_sub[site].add((sym, 0))


def collect_alias_profile(module: Module, fuel: int = 50_000_000,
                          inputs=(), granularity: int = 8) -> AliasProfile:
    """Run ``main`` on the *train* input and collect the alias
    profile."""
    profiler = AliasProfiler(granularity)
    interp = Interpreter(module, [profiler], fuel=fuel)
    interp.inputs = list(inputs)
    interp.run()
    return profiler.profile
