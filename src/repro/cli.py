"""Command-line interface.

Usage::

    python -m repro run FILE [--config NAME] [--spec-source SRC]
                             [--sched block|superblock]
                             [--engine classic|predecode|trace]
                             [--train 1,2,3] [--ref 4,5,6] [--dump-ir]
                             [--inject SCENARIO] [--inject-seed N]
                             [--jobs N] [--time-passes] [--trace-json FILE]
    python -m repro compare FILE [--train ...] [--ref ...]
    python -m repro workloads [--list | --name NAME] [--spec-source SRC]
                              [--engine ENGINE]
    python -m repro campaign [--scenarios poison,storm] [--seeds 0,1,2]
                             [--adversary empty|shuffle|invert] [--jobs N]
                             [--spec-source SRC] [--engine ENGINE]

``--config`` names come from the shared service registry
(:mod:`repro.service.registry` — ``repro run --help`` lists them);
``--spec-source heuristic|profile|static`` overrides where speculation
flags come from (``static`` needs no train input at all);
``--engine classic|predecode|trace`` picks the simulator dispatch
implementation (docs/performance.md — identical output and
architectural counters on all three).
    python -m repro figures [--out DIR]
    python -m repro serve [--host H] [--port P] [--workers N]
                          [--max-queue-depth N] [--max-inflight N]
                          [--cache-dir DIR]
    python -m repro submit (--ping | --stats | FILE) [--op run|compile]
                           [--config SPEC] [--train ...] [--ref ...]
    python -m repro loadgen [--clients N] [--requests N] [--keys K]
                            [--skew S] [--json FILE]
    python -m repro chaos [--seed N] [--scenarios a,b] [--report FILE]

``run`` compiles and simulates one mini-C file and prints its output and
counters; ``compare`` prints the base-vs-speculative row for a file;
``workloads`` runs the bundled SPEC2000-shaped programs; ``campaign``
runs the seeded fault-injection campaign (docs/recovery.md); ``figures``
regenerates every table of the paper's evaluation into a directory;
``serve``/``submit``/``loadgen`` are the compile-as-a-service surface
(docs/service.md): a long-lived daemon, a one-shot client, and a
latency/throughput load generator.

Exit codes: 0 success, 1 the simulated output diverged from the
reference interpreter (the readable diff is printed), 2 the run
exhausted its fuel (the function and instruction count are reported as
a diagnostic, not a stack trace).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core import SpecConfig
from .errors import FuelExhausted
from .pipeline import Comparison, OutputMismatch, compile_and_run, \
    compile_program, format_table
from .service.registry import available_configs, resolve_config
from .ssa import SpecMode

#: the `--spec-source` axis: where speculation flags come from
_SPEC_SOURCES = ("heuristic", "profile", "static")


def _parse_inputs(text: Optional[str]) -> List[float]:
    if not text:
        return []
    out: List[float] = []
    for part in text.split(","):
        part = part.strip()
        out.append(float(part) if "." in part else int(part))
    return out


def _apply_sched(config: SpecConfig, args: argparse.Namespace) -> SpecConfig:
    sched = getattr(args, "sched", None)
    return config.but(scheduler=sched) if sched else config


def _apply_spec_source(config: SpecConfig,
                       args: argparse.Namespace) -> SpecConfig:
    """Honour ``--spec-source``: swap the flag provenance of the chosen
    config.  Profile-free sources also drop the edge profile, so the
    result genuinely needs no train run; ``profile`` turns it on (the
    train run is happening anyway)."""
    src = getattr(args, "spec_source", None)
    if not src:
        return config
    mode = SpecMode(src)
    return config.but(mode=mode,
                      use_edge_profile=(mode is SpecMode.PROFILE))


def _resolve_cli_config(args: argparse.Namespace) -> SpecConfig:
    return _apply_spec_source(
        _apply_sched(resolve_config(args.config), args), args)


def _config_label(args: argparse.Namespace) -> str:
    """The name the stats line reports: the config, plus the
    ``--spec-source`` override when it changed the flag provenance."""
    src = getattr(args, "spec_source", None)
    if src and src != args.config:
        return f"{args.config}+{src}"
    return args.config


def _cmd_run(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    config = _resolve_cli_config(args)
    if args.dump_ir:
        from .ir import format_module

        compiled = compile_program(source, config,
                                   train_inputs=_parse_inputs(args.train))
        print(format_module(compiled.optimized))
        print()
    machine_kwargs = {"engine": args.engine}
    if args.inject != "none":
        from .hazards import make_injector

        machine_kwargs["injector"] = make_injector(args.inject,
                                                   args.inject_seed)
    try:
        result = compile_and_run(
            source, config,
            train_inputs=_parse_inputs(args.train),
            ref_inputs=_parse_inputs(args.ref),
            check_output=not args.no_check,
            fuel=args.fuel,
            machine_kwargs=machine_kwargs,
            jobs=args.jobs,
        )
    except OutputMismatch as exc:
        print(exc.diff(), file=sys.stderr)
        return 1
    except FuelExhausted as exc:
        print(f"error: fuel exhausted in {exc.context()} — "
              f"likely an infinite loop in the program (or raise fuel)",
              file=sys.stderr)
        return 2
    for d in result.diagnostics:
        print(f"note: {d}", file=sys.stderr)
    from .pipeline import default_cache

    cache_stats = default_cache().stats()
    if args.time_passes and result.pass_trace is not None:
        print(result.pass_trace.format_table(), file=sys.stderr)
        print(f"compile cache: {cache_stats['hits']} hits, "
              f"{cache_stats['misses']} misses, "
              f"{cache_stats['bypasses']} bypasses "
              f"({cache_stats['entries']} entries)", file=sys.stderr)
    if args.trace_json and result.pass_trace is not None:
        result.pass_trace.dump_json(
            args.trace_json, cache_stats=cache_stats,
            engine_stats={"engine": args.engine,
                          **result.stats.engine_dict()})
        print(f"pass trace written to {args.trace_json}", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps({"output": result.output,
                          "stats": result.stats.to_dict(),
                          "degraded": result.degraded}, indent=2))
        return 0
    for line in result.output:
        print(line)
    s = result.stats
    print(f"--- {_config_label(args)}: cycles={s.cycles} "
          f"instructions={s.instructions} loads={s.memory_loads} "
          f"(plain={s.plain_loads} ld.a={s.advanced_loads} "
          f"ld.s={s.spec_loads} ld.c={s.check_loads} "
          f"misses={s.check_misses} deferred={s.deferred_faults} "
          f"recovered={s.spec_recoveries})", file=sys.stderr)
    if args.engine == "trace":
        print(f"--- trace cache: traces={s.traces_compiled} "
              f"hits={s.trace_hits} side_exits={s.side_exits} "
              f"trace_dyn_instr={s.trace_dyn_instr}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    train = _parse_inputs(args.train)
    ref = _parse_inputs(args.ref)
    base = compile_and_run(source, SpecConfig.base(),
                           train_inputs=train, ref_inputs=ref)
    spec = compile_and_run(source, resolve_config(args.config),
                           train_inputs=train, ref_inputs=ref)
    comparison = Comparison(args.file, base, spec)
    print(format_table([comparison.row()]))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import all_workloads, compare_workload

    if args.list:
        for w in all_workloads():
            print(f"{w.name:8s} ({w.spec_name}): {w.description}")
        return 0
    names = [args.name] if args.name else [w.name for w in all_workloads()]
    rows = []
    for name in names:
        comparison = compare_workload(
            name, spec_config=_resolve_cli_config(args),
            engine=args.engine)
        rows.append(comparison.row())
    title = args.config + (f" ({args.spec_source} flags)"
                           if args.spec_source else "")
    print(format_table(rows, title=f"{title} vs base"))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .hazards import ADVERSARIES, run_campaign

    transform = ADVERSARIES[args.adversary] if args.adversary else None
    names = args.workloads.split(",") if args.workloads else None
    config = None
    if args.spec_source:
        # same default the campaign uses (static control speculation —
        # the edge profile would optimize the recovery workloads' ld.s
        # sites away), with the requested flag provenance swapped in
        config = SpecConfig.profile().but(mode=SpecMode(args.spec_source),
                                          use_edge_profile=False)
    report = run_campaign(
        workload_names=names,
        config=config,
        scenarios=tuple(args.scenarios.split(",")),
        seeds=[int(s) for s in args.seeds.split(",")],
        profile_transform=transform,
        jobs=args.jobs,
        engine=args.engine,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    import subprocess

    # plain pytest: the benches use conftest fixtures and markers, not
    # the pytest-benchmark plugin (whose flags would be rejected here)
    cmd = [sys.executable, "-m", "pytest", "benchmarks/", "-q"]
    return subprocess.call(cmd)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import run_daemon

    return run_daemon(host=args.host, port=args.port,
                      workers=args.workers,
                      drain_grace=args.drain_grace,
                      max_queue_depth=args.max_queue_depth,
                      max_inflight=args.max_inflight,
                      cache_dir=args.cache_dir)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .hazards.service_chaos import SERVICE_SCENARIOS, \
        run_service_campaign

    scenarios = tuple(args.scenarios.split(",")) if args.scenarios \
        else SERVICE_SCENARIOS
    report = run_service_campaign(scenarios=scenarios, seed=args.seed)
    print(report.summary())
    if args.report:
        with open(args.report, "w") as f:
            f.write(report.matrix())
            f.write("\n")
        print(f"report written to {args.report}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClient, ServiceError

    if not (args.ping or args.stats) and not args.file:
        print("error: a source FILE (or --ping/--stats) is required",
              file=sys.stderr)
        return 2
    client = ServiceClient(args.host, args.port, timeout=args.timeout,
                           connect_retry=args.wait)
    try:
        with client:
            if args.ping:
                print(json.dumps(client.ping(), indent=2, sort_keys=True))
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2,
                                 sort_keys=True))
                return 0
            source = open(args.file).read()
            req = {"op": args.op, "source": source, "config": args.config,
                   "train": _parse_inputs(args.train)}
            if args.op == "run":
                req["ref"] = _parse_inputs(args.ref)
            if args.timeout_ms:
                req["timeout_ms"] = args.timeout_ms
            resp = client.request(req)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach the daemon at "
              f"{args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(resp, indent=2, sort_keys=True))
        return 0
    result = resp["result"]
    for line in result.get("output", ()):
        print(line)
    meta = (f"worker={resp['worker']} " if "worker" in resp else "")
    print(f"--- {args.op} ok: cached={resp.get('cached', False)} "
          f"dedup={resp.get('dedup', False)} {meta}"
          f"elapsed={resp.get('elapsed_ms', 0)}ms", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .service.loadgen import main as loadgen_main

    rest = args.rest
    if rest and rest[0] == "--":
        rest = rest[1:]
    return loadgen_main(rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculative SSAPRE framework (PLDI 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile + simulate one file")
    run.add_argument("file")
    run.add_argument("--config", choices=available_configs(),
                     default="profile",
                     help="named configuration from the shared service "
                          "registry (repro.service.registry)")
    run.add_argument("--spec-source", choices=_SPEC_SOURCES,
                     help="override where speculation flags come from: "
                          "training-run alias profile, syntax "
                          "heuristics, or static probabilistic alias "
                          "analysis (no train input needed)")
    run.add_argument("--sched", choices=("block", "superblock"),
                     help="machine scheduling mode: per-block list "
                          "scheduling (default) or profile-guided "
                          "superblock formation + hot-path layout "
                          "(docs/scheduling.md)")
    from .target import ENGINES

    run.add_argument("--engine", choices=sorted(ENGINES),
                     default="predecode",
                     help="simulator dispatch implementation "
                          "(docs/performance.md): predecoded operands "
                          "(default), the hot-trace JIT layered on it, "
                          "or the frozen classic baseline — identical "
                          "output and architectural counters on all "
                          "three")
    run.add_argument("--train", help="comma-separated train inputs")
    run.add_argument("--ref", help="comma-separated ref inputs")
    run.add_argument("--dump-ir", action="store_true")
    run.add_argument("--no-check", action="store_true",
                     help="skip the interpreter oracle")
    run.add_argument("--json", action="store_true",
                     help="emit output + counters as JSON")
    from .hazards import SCENARIOS

    run.add_argument("--inject", choices=sorted(SCENARIOS),
                     default="none",
                     help="perturb the simulation with this fault-"
                          "injection scenario (docs/recovery.md)")
    run.add_argument("--inject-seed", type=int, default=0,
                     help="seed for the injection decision stream")
    run.add_argument("--fuel", type=int, default=50_000_000,
                     help="interpreter step budget (simulator gets 4x)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="compile independent functions on N threads "
                          "(results are identical to --jobs 1)")
    run.add_argument("--time-passes", action="store_true",
                     help="report per-pass wall time and IR deltas "
                          "(stmts/loads/stores) after compilation")
    run.add_argument("--trace-json", metavar="FILE",
                     help="write the machine-readable per-pass trace "
                          "to FILE")
    run.set_defaults(fn=_cmd_run)

    compare = sub.add_parser("compare", help="base vs speculative")
    compare.add_argument("file")
    compare.add_argument("--config", choices=available_configs(),
                         default="profile")
    compare.add_argument("--train")
    compare.add_argument("--ref")
    compare.set_defaults(fn=_cmd_compare)

    workloads = sub.add_parser("workloads",
                               help="run the SPEC2000-shaped workloads")
    workloads.add_argument("--list", action="store_true")
    workloads.add_argument("--name")
    workloads.add_argument("--config", choices=available_configs(),
                           default="profile")
    workloads.add_argument("--spec-source", choices=_SPEC_SOURCES,
                           help="override the speculation-flag source "
                                "(see `run`)")
    workloads.add_argument("--sched", choices=("block", "superblock"),
                           help="machine scheduling mode (see `run`)")
    workloads.add_argument("--engine", choices=sorted(ENGINES),
                           default="predecode",
                           help="simulator dispatch implementation "
                                "(see `run`)")
    workloads.set_defaults(fn=_cmd_workloads)

    campaign = sub.add_parser(
        "campaign", help="seeded fault-injection campaign: every "
                         "perturbed run must match the reference "
                         "interpreter")
    campaign.add_argument("--workloads",
                          help="comma-separated workload names "
                               "(default: all, incl. recovery set)")
    campaign.add_argument("--scenarios", default="poison,storm,chaos",
                          help="comma-separated injection scenarios")
    campaign.add_argument("--seeds", default="0,1,2",
                          help="comma-separated injector seeds")
    campaign.add_argument("--adversary", choices=("empty", "shuffle",
                                                  "invert"),
                          help="feed the compiler this adversarial "
                               "alias-profile transform")
    campaign.add_argument("--spec-source", choices=_SPEC_SOURCES,
                          help="run the campaign with this speculation-"
                               "flag source (static: wrong guesses may "
                               "only cost recovery replays, never "
                               "output mismatches)")
    campaign.add_argument("--engine", choices=sorted(ENGINES),
                          default="predecode",
                          help="simulate every injected run on this "
                               "dispatch engine (trace: proves the JIT "
                               "deoptimizes correctly under every "
                               "perturbation)")
    import os

    campaign.add_argument(
        "--jobs", type=int, metavar="N",
        default=min(os.cpu_count() or 1, 8),
        help="fan the injected runs over N worker processes "
             "(default: min(cpus, 8)).  Seeds stay deterministic and "
             "results are collected in submission order, so the report "
             "is bit-for-bit identical to --jobs 1")
    campaign.set_defaults(fn=_cmd_campaign)

    figures = sub.add_parser("figures",
                             help="regenerate every paper figure")
    figures.set_defaults(fn=_cmd_figures)

    serve = sub.add_parser(
        "serve", help="run the compile-as-a-service daemon "
                      "(docs/service.md): batched NDJSON requests over "
                      "TCP, worker pool sharding the compile cache, "
                      "in-flight dedup; SIGTERM drains gracefully")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7457,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes sharding the cache "
                            "(0 = execute in-process, single user)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECS",
                       help="how long SIGTERM waits for in-flight "
                            "requests before stopping the workers")
    serve.add_argument("--max-queue-depth", type=int, default=0,
                       metavar="N",
                       help="per-worker queue bound: beyond N queued "
                            "work requests a shard sheds with a typed "
                            "'overload' error carrying retry_after_ms "
                            "(0 = unbounded)")
    serve.add_argument("--max-inflight", type=int, default=0,
                       metavar="N",
                       help="daemon-wide in-flight work bound; beyond "
                            "it new work is shed with 'overload' "
                            "(0 = unbounded)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="persist successful responses to DIR so a "
                            "restarted daemon answers warm keys from "
                            "disk (docs/service.md)")
    serve.set_defaults(fn=_cmd_serve)

    chaos = sub.add_parser(
        "chaos", help="seeded service-level chaos campaign: worker "
                      "kills, stalls, dropped connections, overload "
                      "storms and SIGTERM under load — every request "
                      "must end in exactly one typed outcome "
                      "(docs/service.md)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scenarios",
                       help="comma-separated scenario names (default: "
                            "all; see `repro chaos --help`)")
    chaos.add_argument("--report", metavar="FILE",
                       help="also write the scenario x outcome matrix "
                            "to FILE (results/service_chaos.txt in CI)")
    chaos.set_defaults(fn=_cmd_chaos)

    submit = sub.add_parser(
        "submit", help="send one request to a running daemon")
    submit.add_argument("file", nargs="?",
                        help="mini-C source file (omit with "
                             "--ping/--stats)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7457)
    submit.add_argument("--op", choices=("run", "compile"), default="run")
    submit.add_argument("--config", default="profile",
                        help="registry config spec, composable: e.g. "
                             "profile+superblock (docs/service.md)")
    submit.add_argument("--train", help="comma-separated train inputs")
    submit.add_argument("--ref", help="comma-separated ref inputs")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="client-side socket deadline (seconds)")
    submit.add_argument("--timeout-ms", type=float, default=None,
                        help="daemon-side deadline for this request")
    submit.add_argument("--wait", type=float, default=0.0,
                        help="seconds to retry the connection (daemon "
                             "may still be booting)")
    submit.add_argument("--ping", action="store_true",
                        help="health-check the daemon and exit")
    submit.add_argument("--stats", action="store_true",
                        help="print daemon + worker-cache counters")
    submit.add_argument("--json", action="store_true",
                        help="print the raw response JSON")
    submit.set_defaults(fn=_cmd_submit)

    loadgen = sub.add_parser(
        "loadgen", help="drive a running daemon with concurrent "
                        "clients and report p50/p99 + req/s "
                        "(docs/service.md)")
    loadgen.add_argument("rest", nargs=argparse.REMAINDER,
                         help="arguments for the load generator "
                              "(see `repro loadgen -- --help`)")
    loadgen.set_defaults(fn=_cmd_loadgen)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - `python -m repro.cli`
    sys.exit(main())
