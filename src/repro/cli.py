"""Command-line interface.

Usage::

    python -m repro run FILE [--config base|profile|heuristic|aggressive]
                             [--train 1,2,3] [--ref 4,5,6] [--dump-ir]
    python -m repro compare FILE [--train ...] [--ref ...]
    python -m repro workloads [--list | --name NAME]
    python -m repro figures [--out DIR]

``run`` compiles and simulates one mini-C file and prints its output and
counters; ``compare`` prints the base-vs-speculative row for a file;
``workloads`` runs the bundled SPEC2000-shaped programs; ``figures``
regenerates every table of the paper's evaluation into a directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core import SpecConfig
from .pipeline import Comparison, compile_and_run, compile_program, \
    format_table

_CONFIGS = {
    "unoptimized": SpecConfig.unoptimized,
    "base": SpecConfig.base,
    "profile": SpecConfig.profile,
    "heuristic": SpecConfig.heuristic,
    "aggressive": SpecConfig.aggressive,
}


def _parse_inputs(text: Optional[str]) -> List[float]:
    if not text:
        return []
    out: List[float] = []
    for part in text.split(","):
        part = part.strip()
        out.append(float(part) if "." in part else int(part))
    return out


def _cmd_run(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    config = _CONFIGS[args.config]()
    if args.dump_ir:
        from .ir import format_module

        compiled = compile_program(source, config,
                                   train_inputs=_parse_inputs(args.train))
        print(format_module(compiled.optimized))
        print()
    result = compile_and_run(
        source, config,
        train_inputs=_parse_inputs(args.train),
        ref_inputs=_parse_inputs(args.ref),
        check_output=not args.no_check,
    )
    if args.json:
        import json

        print(json.dumps({"output": result.output,
                          "stats": result.stats.to_dict()}, indent=2))
        return 0
    for line in result.output:
        print(line)
    s = result.stats
    print(f"--- {args.config}: cycles={s.cycles} "
          f"instructions={s.instructions} loads={s.memory_loads} "
          f"(plain={s.plain_loads} ld.a={s.advanced_loads} "
          f"ld.s={s.spec_loads} ld.c={s.check_loads} "
          f"misses={s.check_misses})", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    train = _parse_inputs(args.train)
    ref = _parse_inputs(args.ref)
    base = compile_and_run(source, SpecConfig.base(),
                           train_inputs=train, ref_inputs=ref)
    spec = compile_and_run(source, _CONFIGS[args.config](),
                           train_inputs=train, ref_inputs=ref)
    comparison = Comparison(args.file, base, spec)
    print(format_table([comparison.row()]))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import all_workloads, compare_workload

    if args.list:
        for w in all_workloads():
            print(f"{w.name:8s} ({w.spec_name}): {w.description}")
        return 0
    names = [args.name] if args.name else [w.name for w in all_workloads()]
    rows = []
    for name in names:
        comparison = compare_workload(
            name, spec_config=_CONFIGS[args.config]())
        rows.append(comparison.row())
    print(format_table(rows, title=f"{args.config} vs base"))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import subprocess

    cmd = [sys.executable, "-m", "pytest", "benchmarks/",
           "--benchmark-disable", "-q"]
    return subprocess.call(cmd)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Speculative SSAPRE framework (PLDI 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile + simulate one file")
    run.add_argument("file")
    run.add_argument("--config", choices=sorted(_CONFIGS), default="profile")
    run.add_argument("--train", help="comma-separated train inputs")
    run.add_argument("--ref", help="comma-separated ref inputs")
    run.add_argument("--dump-ir", action="store_true")
    run.add_argument("--no-check", action="store_true",
                     help="skip the interpreter oracle")
    run.add_argument("--json", action="store_true",
                     help="emit output + counters as JSON")
    run.set_defaults(fn=_cmd_run)

    compare = sub.add_parser("compare", help="base vs speculative")
    compare.add_argument("file")
    compare.add_argument("--config", choices=sorted(_CONFIGS),
                         default="profile")
    compare.add_argument("--train")
    compare.add_argument("--ref")
    compare.set_defaults(fn=_cmd_compare)

    workloads = sub.add_parser("workloads",
                               help="run the SPEC2000-shaped workloads")
    workloads.add_argument("--list", action="store_true")
    workloads.add_argument("--name")
    workloads.add_argument("--config", choices=sorted(_CONFIGS),
                           default="profile")
    workloads.set_defaults(fn=_cmd_workloads)

    figures = sub.add_parser("figures",
                             help="regenerate every paper figure")
    figures.set_defaults(fn=_cmd_figures)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
