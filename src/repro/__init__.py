"""repro — reproduction of *A Compiler Framework for Speculative Analysis
and Optimizations* (Lin et al., PLDI 2003).

The package implements, from scratch:

* a mid-level IR and C-like frontend (:mod:`repro.ir`, :mod:`repro.lang`);
* alias analyses and an alias/edge profiler (:mod:`repro.analysis`,
  :mod:`repro.profiling`);
* the paper's *speculative SSA form* — HSSA with likeliness flags on µ/χ
  (:mod:`repro.ssa`);
* the paper's *speculative SSAPRE* with data and control speculation,
  register promotion, strength reduction and LFTR (:mod:`repro.core`);
* an IA-64-flavoured target with an ALAT and a timing simulator
  (:mod:`repro.target`);
* an end-to-end pipeline and SPEC2000-shaped workloads
  (:mod:`repro.pipeline`, :mod:`repro.workloads`).

Quickstart::

    from repro.pipeline import compile_and_run, SpecConfig
    result = compile_and_run(source, spec=SpecConfig.profile())
    print(result.stats.loads_retired, result.stats.check_loads)
"""

__version__ = "1.1.0"
