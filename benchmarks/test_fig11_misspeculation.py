"""Figure 11 — dynamic check loads and the mis-speculation ratio.

The paper reports (a) the percentage of dynamic check loads (ld.c) over
total retired loads — how much data speculation was exploited — and (b)
the mis-speculation ratio (failed checks / checks).

Paper shape being checked:

* mis-speculation ratios are generally very small;
* gzip is the outlier: a visible mis-speculation ratio, but on a
  negligible check count, so it cannot hurt performance;
* benchmarks whose aliasing never materializes at runtime mis-speculate
  (almost) never.
"""

import pytest

from repro.pipeline import format_table

from conftest import emit_table


@pytest.fixture(scope="module")
def fig11_rows(workload_runs):
    rows = []
    for runs in workload_runs.values():
        c = runs.comparison("profile")
        rows.append({
            "benchmark": runs.name,
            "check_ratio_%": 100.0 * c.check_ratio,
            "misspec_ratio_%": 100.0 * c.misspeculation_ratio,
            "checks": runs.profile.stats.check_loads,
            "check_misses": runs.profile.stats.check_misses,
        })
    return rows


def test_fig11_table(fig11_rows, benchmark):
    text = format_table(
        fig11_rows,
        title="Figure 11: check loads over retired loads and "
              "mis-speculation ratio (profile-driven)",
    )
    emit_table("fig11_misspeculation", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(fig11_rows) == 8


def test_fig11_misspeculation_generally_small(fig11_rows):
    for r in fig11_rows:
        assert r["misspec_ratio_%"] <= 10.0, r["benchmark"]


def test_fig11_gzip_anomaly(fig11_rows):
    """gzip: noticeable mis-speculation ratio on a negligible check
    count (the paper's ~6% on near-zero checks)."""
    by_name = {r["benchmark"]: r for r in fig11_rows}
    gzip = by_name["gzip"]
    assert gzip["misspec_ratio_%"] >= 2.0
    assert gzip["check_ratio_%"] < 2.0  # negligible exposure
    # every heavy speculator keeps a (near-)zero miss ratio
    for name in ("art", "ammp", "equake", "mcf", "twolf", "vpr"):
        assert by_name[name]["misspec_ratio_%"] <= 1.0, name


def test_fig11_non_aliasing_benchmarks_never_miss(fig11_rows):
    by_name = {r["benchmark"]: r for r in fig11_rows}
    for name in ("art", "ammp", "equake", "twolf", "vpr", "mcf"):
        assert by_name[name]["check_misses"] == 0, name


def test_fig11_speculation_was_actually_exploited(fig11_rows):
    """The check ratio must be nonzero wherever Figure 10 claimed load
    reductions — checks are how the reductions were realized."""
    by_name = {r["benchmark"]: r for r in fig11_rows}
    for name in ("art", "ammp", "equake", "mcf", "twolf"):
        assert by_name[name]["check_ratio_%"] > 1.0, name
