"""§5.2 — heuristic rules vs alias profile.

The paper: "In the absence of alias profile, we apply heuristic rules …
We found that the performance of the heuristic version is comparable to
that of the profile-based version."

Reproduced shape: on every workload, the heuristic configuration's load
reduction lands in the same ballpark as the profile configuration's, and
its mis-speculation stays low ("surprisingly few mis-speculations" in
the paper's trace analysis of the rules).
"""

import pytest

from repro.pipeline import format_table

from conftest import emit_table


@pytest.fixture(scope="module")
def hvp_rows(workload_runs):
    rows = []
    for runs in workload_runs.values():
        prof = runs.comparison("profile")
        heur = runs.comparison("heuristic")
        rows.append({
            "benchmark": runs.name,
            "profile_loadred_%": 100.0 * prof.load_reduction,
            "heuristic_loadred_%": 100.0 * heur.load_reduction,
            "profile_speedup_%": 100.0 * prof.speedup,
            "heuristic_speedup_%": 100.0 * heur.speedup,
            "heuristic_misspec_%": 100.0 * heur.misspeculation_ratio,
        })
    return rows


def test_heuristic_vs_profile_table(hvp_rows, benchmark):
    text = format_table(
        hvp_rows,
        title="§5.2: heuristic rules vs alias profile",
    )
    emit_table("heuristic_vs_profile", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_heuristic_comparable_load_reduction(hvp_rows):
    """Heuristics recover a comparable share of the profile's load
    reduction on the main beneficiaries."""
    by_name = {r["benchmark"]: r for r in hvp_rows}
    for name in ("art", "ammp", "equake", "twolf", "mcf"):
        r = by_name[name]
        assert (r["heuristic_loadred_%"]
                >= 0.6 * r["profile_loadred_%"]), name


def test_heuristic_misspeculation_low(hvp_rows):
    """The three syntax rules mis-speculate rarely (paper: a trace
    analysis found 'surprisingly few mis-speculations')."""
    for r in hvp_rows:
        assert r["heuristic_misspec_%"] <= 10.0, r["benchmark"]


def test_heuristic_needs_no_profile(workload_runs):
    """Structural check: the heuristic runs were produced without an
    alias profile (SpecMode.HEURISTIC takes none)."""
    from repro.ssa import SpecMode

    for runs in workload_runs.values():
        assert runs.heuristic.config.mode is SpecMode.HEURISTIC
        assert not runs.heuristic.config.needs_alias_profile
