"""§5.1 — the smvp case study (equake's time-critical procedure).

The paper demonstrates the opportunity on equake's ``smvp``: 39.8 % of
the procedure's load operations are replaced by check instructions,
giving a 6 % speedup over the base, while a manually tuned version
(registers allocated with *no* check instructions — valid only because
the aliasing never occurs on this input) reaches 14 %, the headroom the
ORC scheduler of the day left on the table.

Reproduced shape:

* a large fraction of the equake loads become checks;
* the speculative version beats the base;
* the "manually tuned" (aggressive, check-free) bound beats the
  speculative version — checks and their address recomputation are not
  free in a real pipeline.
"""

import pytest

from repro.pipeline import format_table

from conftest import emit_table


@pytest.fixture(scope="module")
def smvp_numbers(workload_runs):
    runs = workload_runs["equake"]
    base, spec, aggressive = runs.base, runs.profile, runs.aggressive
    # the paper's 39.8% is per-procedure: use smvp's own load counters
    smvp = spec.stats.fn_stats["smvp"]
    check_fraction = smvp.check_loads / max(1, smvp.loads_retired)
    speedup = 1.0 - spec.stats.cycles / base.stats.cycles
    manual = 1.0 - aggressive.stats.cycles / base.stats.cycles
    return {
        "checks_over_loads_%": 100.0 * check_fraction,
        "speculative_speedup_%": 100.0 * speedup,
        "manual_bound_speedup_%": 100.0 * manual,
    }


def test_smvp_table(smvp_numbers, benchmark):
    rows = [dict({"metric": k, "measured": v,
                  "paper": {"checks_over_loads_%": 39.8,
                            "speculative_speedup_%": 6.0,
                            "manual_bound_speedup_%": 14.0}[k]})
            for k, v in smvp_numbers.items()]
    text = format_table(rows, title="§5.1 smvp case study (equake)")
    emit_table("smvp_case_study", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_smvp_large_check_fraction(smvp_numbers):
    """Paper: 39.8% of smvp loads became checks; a comparable fraction
    (>15%) must be reproduced."""
    assert smvp_numbers["checks_over_loads_%"] >= 15.0


def test_smvp_speculation_beats_base(smvp_numbers):
    assert smvp_numbers["speculative_speedup_%"] > 0.0


def test_smvp_manual_bound_beats_speculation(smvp_numbers):
    """The check-free manual tuning bounds the speculative gain from
    above (the paper's 14% vs 6%)."""
    assert (smvp_numbers["manual_bound_speedup_%"]
            >= smvp_numbers["speculative_speedup_%"])
