"""The compile-service benchmark (docs/service.md).

Boots the real daemon — the CLI path, worker subprocesses and all —
drives it with the load generator at the acceptance shape (8 concurrent
clients racing over 4 distinct keys, cold phase then warm phase), and
writes ``BENCH_service.json`` at the repo root: p50/p99 latency and
request throughput per phase plus the daemon's cache/dedup counters,
uploaded by the CI ``service`` job as the service perf trajectory.

The hard assertions are the service's reason to exist:

* the cache layer compiles each of the 4 keys **exactly once** across
  all 8 clients and both phases — in-flight dedup absorbs concurrent
  duplicates, the shard caches absorb sequential ones;
* the warm phase answers entirely from the shard caches;
* SIGTERM drains gracefully: the daemon exits 0;
* a restart with ``--cache-dir`` comes back **warm**: the second
  generation's first contact with every key is answered from disk,
  at a hit-rate no worse than the first generation's warm phase.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.service.loadgen import run_load

pytestmark = pytest.mark.bench_smoke

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

CLIENTS = 8
REQUESTS = 4   # per client per phase: one full sweep of the key space
KEYS = 4
WORKERS = 2

#: filled by the load tests, written by the final test (file order)
REPORT = {"load": None, "drain_exit_code": None, "restart": None}


def _boot(*extra_args):
    """One daemon subprocess via the CLI entry point: (proc, port)."""
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(REPO_ROOT, "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--workers", str(WORKERS), *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    banner = proc.stdout.readline()
    # "repro service listening on HOST:PORT (N workers, pid P)"
    assert "listening on" in banner, banner
    port = int(banner.split("listening on ", 1)[1]
               .split()[0].rsplit(":", 1)[1])
    return proc, port


def _drain(proc):
    proc.send_signal(signal.SIGTERM)
    return proc.wait(timeout=60)


@pytest.fixture(scope="module")
def service():
    """The daemon as a real subprocess via the CLI entry point."""
    proc, port = _boot()
    yield proc, port
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


def test_load_dedup_acceptance(service):
    """8 clients x 4 keys, cold + warm: 4 compiles total, zero errors,
    a warm phase served entirely from cache."""
    _, port = service
    report = run_load(port=port, clients=CLIENTS, requests=REQUESTS,
                      keys=KEYS, skew=0.0, op="run", seed=0,
                      phases=("cold", "warm"), timeout=300.0)
    print("\n" + report.summary())
    assert all(p.errors == 0 for p in report.phases.values()), \
        report.summary()
    assert report.compiles == KEYS, \
        f"cache layer compiled {report.compiles}x for {KEYS} keys — " \
        f"dedup or shard caching is broken"
    warm = report.phases["warm"]
    assert warm.cached == warm.requests, \
        "warm phase must be answered entirely from the shard caches"
    assert report.deduped > 0, \
        "concurrent identical requests never coalesced"
    cold = report.phases["cold"].to_dict()
    warm_d = warm.to_dict()
    assert cold["p50_ms"] > 0 and cold["p99_ms"] >= cold["p50_ms"]
    assert warm_d["p50_ms"] > 0 and warm_d["req_per_s"] > 0
    REPORT["load"] = report


def test_graceful_drain_exits_zero(service):
    """SIGTERM after the load: drain, stop workers, exit code 0."""
    proc, _ = service
    code = _drain(proc)
    assert code == 0, f"daemon exited {code} on SIGTERM (expected a " \
                      f"graceful drain); output:\n{proc.stdout.read()}"
    REPORT["drain_exit_code"] = code


def test_restart_with_cache_dir_is_warm(tmp_path_factory):
    """Kill-and-reboot with ``--cache-dir``: the second generation
    answers the whole key space from disk — zero recompiles, a
    first-contact hit-rate at least the first generation's warm-phase
    hit-rate (docs/service.md, "Cache persistence")."""
    cache_dir = str(tmp_path_factory.mktemp("service-cache"))

    proc, port = _boot("--cache-dir", cache_dir)
    try:
        first = run_load(port=port, clients=CLIENTS, requests=REQUESTS,
                         keys=KEYS, skew=0.0, op="run", seed=0,
                         phases=("cold", "warm"), timeout=300.0)
    finally:
        assert _drain(proc) == 0
    assert all(p.errors == 0 for p in first.phases.values()), \
        first.summary()
    stored = first.daemon_stats.get("persist_stores", 0)
    assert stored == KEYS, \
        f"generation 1 persisted {stored} entries for {KEYS} keys"
    warm_rate_pre = (first.phases["warm"].cached
                     / first.phases["warm"].requests)

    proc, port = _boot("--cache-dir", cache_dir)
    try:
        second = run_load(port=port, clients=CLIENTS, requests=REQUESTS,
                          keys=KEYS, skew=0.0, op="run", seed=0,
                          phases=("cold", "warm"), timeout=300.0)
    finally:
        assert _drain(proc) == 0
    print("\n" + second.summary())
    assert all(p.errors == 0 for p in second.phases.values()), \
        second.summary()
    assert second.compiles == 0, \
        f"restarted daemon recompiled {second.compiles} keys the " \
        f"disk store already held"
    cold2 = second.phases["cold"]
    warm_rate_post = cold2.cached / cold2.requests
    assert warm_rate_post >= warm_rate_pre, \
        f"restart hit-rate {warm_rate_post:.2f} fell below the " \
        f"pre-restart warm hit-rate {warm_rate_pre:.2f}"
    REPORT["restart"] = {
        "warm_hit_rate_pre": warm_rate_pre,
        "warm_hit_rate_post": warm_rate_post,
        "persisted": first.persisted,
        "compiles_after_restart": second.compiles,
        "time_to_ready_s": second.time_to_ready_s,
    }


def test_write_bench_service_json():
    """Assemble BENCH_service.json (the CI ``service`` artifact)."""
    assert REPORT["load"] is not None, "load phase did not run"
    assert REPORT["drain_exit_code"] == 0
    assert REPORT["restart"] is not None, "restart phase did not run"
    doc = {
        "schema": 2,
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "drain_exit_code": REPORT["drain_exit_code"],
        "restart": REPORT["restart"],
    }
    doc.update(REPORT["load"].to_dict())
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    warm = doc["phases"]["warm"]
    restart = doc["restart"]
    print(f"\nBENCH_service.json: {doc['compiles']} compiles for "
          f"{doc['keys']} keys, {doc['deduped']} deduped, warm p50 "
          f"{warm['p50_ms']:.2f}ms / p99 {warm['p99_ms']:.2f}ms at "
          f"{warm['req_per_s']:.0f} req/s; restart hit-rate "
          f"{restart['warm_hit_rate_post']:.2f} (pre "
          f"{restart['warm_hit_rate_pre']:.2f})")
