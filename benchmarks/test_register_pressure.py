"""§5.2 — register pressure / RSE stalls.

The paper: "Speculation has a tendency to extend the lifetime of
registers … We have measured the RSE (Register Stack Engine) stall
cycles, but have not observed any notable increase."

Our simulator has no RSE; the proxy is the static max-live virtual
register count per function (what would drive stacked-register
allocation on Itanium).  Reproduced shape: speculative promotion grows
max-live only modestly — far less than doubling — on every workload's
hottest function.
"""

import pytest

from repro.pipeline import format_table
from repro.target import compute_max_live

from conftest import emit_table


def _max_live(result):
    return max(
        fn.max_live for fn in result.program.functions.values()
    )


@pytest.fixture(scope="module")
def pressure_rows(workload_runs):
    rows = []
    for runs in workload_runs.values():
        base_live = _max_live(runs.base)
        spec_live = _max_live(runs.profile)
        rows.append({
            "benchmark": runs.name,
            "base_max_live": base_live,
            "spec_max_live": spec_live,
            "growth_%": 100.0 * (spec_live - base_live) / base_live,
        })
    return rows


def test_register_pressure_table(pressure_rows, benchmark):
    text = format_table(
        pressure_rows,
        title="§5.2: register-pressure proxy (max simultaneously-live "
              "virtual registers)",
    )
    emit_table("register_pressure", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_no_notable_pressure_increase(pressure_rows):
    for r in pressure_rows:
        assert r["growth_%"] <= 60.0, r["benchmark"]


def test_pressure_never_explodes_absolute(pressure_rows):
    """Itanium offers 96 stacked registers; staying well below that
    means no RSE traffic — the paper's observation."""
    for r in pressure_rows:
        assert r["spec_max_live"] <= 96, r["benchmark"]
