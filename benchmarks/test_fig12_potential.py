"""Figure 12 — potential load reduction, two estimation methods.

The paper estimates how much speculative register promotion *could*
remove: (1) a simulation-based method after Bodík et al. [2] — dynamic
load-reuse detection over equivalence classes of identically-named /
identically-shaped references — and (2) aggressive register promotion
that simply ignores every may-alias (safe only because the measured
inputs never materialize the aliasing).

Paper shape being checked: the potential numbers bound the achieved
reductions from above, and their *trend across benchmarks correlates*
with Figure 10's achieved reductions (the paper's reading: gzip's small
potential explains its small gain).
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_program, format_table
from repro.profiling import LoadReuseSimulator, Interpreter
from repro.workloads import all_workloads

from conftest import emit_table


def _remaining_reuse(workload):
    """The paper instruments the program *after* (base) register
    promotion: run the load-reuse simulation over the base-optimized
    IR."""
    compiled = compile_program(workload.source, SpecConfig.base(),
                               train_inputs=workload.train_inputs)
    sim = LoadReuseSimulator()
    interp = Interpreter(compiled.optimized, [sim])
    interp.inputs = list(workload.ref_inputs)
    interp.run()
    return sim.stats


@pytest.fixture(scope="module")
def fig12_rows(workload_runs):
    rows = []
    for w in all_workloads():
        runs = workload_runs[w.name]
        reuse = _remaining_reuse(w)
        achieved = runs.comparison("profile").load_reduction
        base_loads = runs.base.stats.memory_loads
        # method 2: every check is a removed load (the manually tuned
        # code deletes them), so count only the loads that remain real.
        agg = runs.aggressive.stats
        remaining = agg.plain_loads + agg.advanced_loads + agg.spec_loads
        aggressive = 0.0
        if base_loads:
            aggressive = 1.0 - remaining / base_loads
        rows.append({
            "benchmark": w.name,
            "achieved_%": 100.0 * achieved,
            "simulation_potential_%": 100.0 * reuse.reuse_fraction,
            "aggressive_promotion_%": 100.0 * aggressive,
        })
    return rows


def test_fig12_table(fig12_rows, benchmark):
    text = format_table(
        fig12_rows,
        title="Figure 12: potential load reduction (load-reuse "
              "simulation and aggressive no-alias promotion) vs achieved",
    )
    emit_table("fig12_potential", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(fig12_rows) == 8


def test_fig12_aggressive_tracks_achieved(fig12_rows):
    """Aggressive promotion is an *estimate* of the same potential the
    speculative promotion exploits: per benchmark it must land in the
    achieved reduction's neighbourhood (the two differ in second-order
    code placement, e.g. extra hoisted loads on rarely-taken paths)."""
    for r in fig12_rows:
        assert (r["aggressive_promotion_%"]
                >= 0.75 * r["achieved_%"] - 1.0), r["benchmark"]
        assert r["aggressive_promotion_%"] >= 0.0, r["benchmark"]


def test_fig12_trend_correlates_with_achieved(fig12_rows):
    """Spearman rank correlation between potential and achieved > 0.5
    (the paper: 'the trend of potential load reduction correlates well
    with that of the load reduction achieved')."""
    from scipy.stats import spearmanr

    achieved = [r["achieved_%"] for r in fig12_rows]
    potential = [r["simulation_potential_%"] for r in fig12_rows]
    rho, _ = spearmanr(achieved, potential)
    assert rho > 0.5, f"rank correlation too weak: {rho:.2f}"


def test_fig12_gzip_small_potential(fig12_rows):
    """'After seeing the limited potential of gzip in Figure 12, we may
    not expect a significant performance gain' — gzip's potential must
    sit at the bottom of the field."""
    by_name = {r["benchmark"]: r for r in fig12_rows}
    gzip_potential = by_name["gzip"]["simulation_potential_%"]
    bigger = sum(1 for r in fig12_rows
                 if r["simulation_potential_%"] > gzip_potential)
    assert bigger >= 5  # at least 5 of the other 7 exceed gzip
