"""Ablations over the design choices DESIGN.md calls out.

Each ablation isolates one mechanism the paper's design relies on:

* **ALAT capacity** — a tiny ALAT evicts entries between ld.a and ld.c,
  turning successful speculation into mis-speculation (why the ISA gives
  the structure 32 entries);
* **check latency** — the entire benefit premise is that a successful
  check costs ~0 cycles (paper §5.2); pricing checks like loads erases
  the speedup;
* **control speculation** — disabling it forfeits the loop-invariant
  hoists (zero-trip risk) that the paper's framework performs via
  non-down-safe Φs;
* **store forwarding** — register promotion after Lo et al. [25] also
  forwards stored values; without it some redundant loads survive;
* **TBAA** — the base's type-based alias analysis (Diwan et al. [9])
  already removes int/float false aliasing; without it the base gets
  slower, widening the speculative win;
* **heuristic rules individually** — rule 3 (calls stay binding) is a
  safety rule: removing it would speculate across calls without profile
  evidence.
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import format_table
from repro.target import ALAT, DataCache
from repro.workloads import get_workload, run_workload

from conftest import emit_table


@pytest.fixture(scope="module")
def equake():
    return get_workload("equake")


@pytest.fixture(scope="module")
def mcf():
    return get_workload("mcf")


def test_ablation_alat_capacity(equake, benchmark):
    """Shrinking the ALAT turns hits into capacity misses."""
    rows = []
    for entries in (2, 4, 8, 32):
        result = run_workload(
            equake, SpecConfig.profile(),
            machine_overrides={"alat": ALAT(entries=entries, ways=2)},
        )
        rows.append({
            "alat_entries": entries,
            "check_misses": result.stats.check_misses,
            "misspec_%": 100.0 * result.stats.misspeculation_ratio,
            "cycles": result.stats.cycles,
        })
    text = format_table(rows, title="Ablation: ALAT capacity (equake)")
    emit_table("ablation_alat", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows[0]["check_misses"] > rows[-1]["check_misses"]
    assert rows[-1]["check_misses"] == 0
    # cycles degrade monotonically-ish as the ALAT shrinks
    assert rows[0]["cycles"] >= rows[-1]["cycles"]


def test_ablation_check_latency(equake, benchmark):
    """If a successful ld.c cost as much as the FP load it replaces,
    speculative promotion would stop paying."""
    rows = []
    base = run_workload(equake, SpecConfig.base())
    for latency in (0, 2, 9):
        result = run_workload(
            equake, SpecConfig.profile(),
            machine_overrides={"check_hit_latency": latency},
        )
        rows.append({
            "check_hit_latency": latency,
            "cycles": result.stats.cycles,
            "speedup_%": 100.0 * (1 - result.stats.cycles
                                  / base.stats.cycles),
        })
    text = format_table(rows,
                        title="Ablation: successful-check latency (equake)")
    emit_table("ablation_check_latency", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows[0]["cycles"] < rows[-1]["cycles"]
    assert rows[0]["speedup_%"] > rows[-1]["speedup_%"]


def test_ablation_control_speculation(equake, benchmark):
    """Without control speculation the loop-invariant v[i][k] loads stay
    in the inner loop."""
    with_cs = run_workload(equake, SpecConfig.profile())
    without = run_workload(
        equake, SpecConfig.profile().but(control_speculation=False))
    rows = [
        {"control_speculation": "on",
         "memory_loads": with_cs.stats.memory_loads},
        {"control_speculation": "off",
         "memory_loads": without.stats.memory_loads},
    ]
    emit_table("ablation_control_spec",
               format_table(rows, title="Ablation: control speculation "
                                        "(equake)"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert with_cs.stats.memory_loads < without.stats.memory_loads


def test_ablation_store_forwarding(mcf, benchmark):
    with_sf = run_workload(mcf, SpecConfig.profile())
    without = run_workload(
        mcf, SpecConfig.profile().but(store_forwarding=False))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert with_sf.stats.memory_loads <= without.stats.memory_loads


def test_ablation_tbaa_helps_base(equake, benchmark):
    """The O3 base relies on TBAA to promote across int/float stores
    without speculation; turning TBAA off costs the base loads."""
    with_tbaa = run_workload(equake, SpecConfig.base())
    without = run_workload(equake, SpecConfig.base().but(use_tbaa=False))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert with_tbaa.stats.memory_loads <= without.stats.memory_loads


def test_ablation_scheduler(equake, benchmark):
    """§5.1 blames scheduling for part of the check-instruction cost:
    without list scheduling both builds slow down, and the gap between
    them changes — scheduling quality and speculative promotion
    interact."""
    rows = []
    for schedule in (True, False):
        base = run_workload(equake, SpecConfig.base().but(
            schedule=schedule))
        spec = run_workload(equake, SpecConfig.profile().but(
            schedule=schedule))
        rows.append({
            "scheduler": "on" if schedule else "off",
            "base_cycles": base.stats.cycles,
            "spec_cycles": spec.stats.cycles,
            "speedup_%": 100.0 * (1 - spec.stats.cycles
                                  / base.stats.cycles),
        })
    emit_table("ablation_scheduler",
               format_table(rows, title="Ablation: list scheduler "
                                        "(equake)"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on, off = rows
    assert on["base_cycles"] <= off["base_cycles"]
    assert on["spec_cycles"] <= off["spec_cycles"]


def test_ablation_profile_granularity(benchmark):
    """Coarser LOC naming (whole objects) cannot disambiguate gzip's
    intra-array accesses — the speculation (and its mis-speculation)
    disappears; the fine default reproduces them."""
    import repro.pipeline.driver as driver
    from repro.profiling import collect_alias_profile

    gzip = get_workload("gzip")
    fine = run_workload(gzip, SpecConfig.profile())

    original = collect_alias_profile

    def coarse_collect(module, fuel=50_000_000, inputs=(), granularity=8):
        return original(module, fuel=fuel, inputs=inputs,
                        granularity=1_000_000)

    driver.collect_alias_profile = coarse_collect
    try:
        coarse = run_workload(gzip, SpecConfig.profile())
    finally:
        driver.collect_alias_profile = original
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fine.stats.check_loads > coarse.stats.check_loads
    assert coarse.stats.check_misses == 0


def test_ablation_likeliness_threshold(benchmark):
    """§3.1's degree-of-likeliness knob: with threshold 0 (the paper's
    membership rule) gzip's colliding store is flagged χs wherever the
    TRAIN run saw it; raising the threshold lets rare train-time
    collisions stay speculative — more checks, more mis-speculation."""
    gzip = get_workload("gzip")
    # a train input that DOES occasionally hit head[0] (like ref)
    from dataclasses import replace

    colliding_train = replace(gzip, train_inputs=gzip.ref_inputs)
    rows = []
    for threshold in (0.0, 0.2):
        cfg = SpecConfig.profile().but(likeliness_threshold=threshold)
        result = run_workload(colliding_train, cfg)
        rows.append({
            "threshold": threshold,
            "checks": result.stats.check_loads,
            "check_misses": result.stats.check_misses,
        })
    emit_table("ablation_threshold",
               format_table(rows, title="Ablation: likeliness threshold "
                                        "(gzip, colliding train input)"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    zero, some = rows
    # membership rule: collision seen in training → no speculation on it
    assert some["checks"] >= zero["checks"]
    assert some["check_misses"] >= zero["check_misses"]
    assert some["check_misses"] > 0


def test_ablation_pointer_analysis(benchmark):
    """Swapping Steensgaard for inclusion-based (Andersen) points-to:
    a sharper static baseline can shrink the speculative win, but the
    bulk of it survives — the aliasing the paper targets is
    input-dependent, beyond any static analysis."""
    rows = []
    for name in ("equake", "twolf", "mcf"):
        w = get_workload(name)
        for analysis in ("steensgaard", "andersen"):
            base = run_workload(w, SpecConfig.base().but(
                pointer_analysis=analysis))
            spec = run_workload(w, SpecConfig.profile().but(
                pointer_analysis=analysis))
            rows.append({
                "benchmark": name,
                "analysis": analysis,
                "base_loads": base.stats.memory_loads,
                "spec_loads": spec.stats.memory_loads,
                "loadred_%": 100.0 * (1 - spec.stats.memory_loads
                                      / base.stats.memory_loads),
            })
    emit_table("ablation_pointer_analysis",
               format_table(rows, title="Ablation: points-to analysis"))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r["benchmark"], r["analysis"]): r for r in rows}
    for name in ("equake", "twolf", "mcf"):
        steens = by_key[(name, "steensgaard")]
        anders = by_key[(name, "andersen")]
        # a sharper analysis never makes the base need MORE loads
        assert anders["base_loads"] <= steens["base_loads"]
        # and speculation still removes a meaningful share
        assert anders["loadred_%"] >= 5.0
