"""Figure 10 — per-benchmark effect of speculative register promotion.

The paper reports, for eight SPEC2000 programs, the percentage of retired
load operations removed, the execution-time speedup over O3, and the
reduction in data-access cycles.  This bench regenerates the same three
series with the profile-driven speculative configuration against the
O3+TBAA-style base.

Paper shape being checked (not absolute numbers):

* art, ammp, equake, mcf and twolf see a solid load reduction;
* gzip sees almost none (few opportunities);
* mcf's speedup lags far behind its load reduction (the removed loads
  are mostly cache hits while the program is miss-bound);
* reducing loads never makes a benchmark meaningfully slower.
"""

import pytest

from repro.pipeline import format_table

from conftest import emit_table


@pytest.fixture(scope="module")
def fig10_rows(workload_runs):
    return [runs.comparison("profile").row()
            for runs in workload_runs.values()]


def test_fig10_table(fig10_rows, benchmark):
    text = format_table(
        [
            {k: r[k] for k in ("benchmark", "load_reduction_%",
                               "speedup_%", "data_access_reduction_%")}
            for r in fig10_rows
        ],
        title="Figure 10: speculative register promotion vs O3 base "
              "(profile-driven)",
    )
    emit_table("fig10_load_reduction", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(fig10_rows) == 8


def test_fig10_main_beneficiaries_reduce_loads(fig10_rows):
    by_name = {r["benchmark"]: r for r in fig10_rows}
    for name in ("art", "ammp", "equake", "mcf", "twolf"):
        assert by_name[name]["load_reduction_%"] >= 5.0, name


def test_fig10_gzip_has_few_opportunities(fig10_rows):
    by_name = {r["benchmark"]: r for r in fig10_rows}
    assert by_name["gzip"]["load_reduction_%"] < 3.0
    # and every other beneficiary beats it
    for name in ("art", "ammp", "equake", "mcf", "twolf"):
        assert (by_name[name]["load_reduction_%"]
                > by_name["gzip"]["load_reduction_%"])


def test_fig10_mcf_speedup_lags_load_reduction(fig10_rows):
    """The paper: 6% fewer loads buys mcf only 2% time — the reduced
    loads are cache hits in a miss-bound program."""
    by_name = {r["benchmark"]: r for r in fig10_rows}
    mcf = by_name["mcf"]
    assert mcf["speedup_%"] < mcf["load_reduction_%"]


def test_fig10_no_meaningful_slowdowns(fig10_rows):
    for r in fig10_rows:
        assert r["speedup_%"] > -2.0, r["benchmark"]


def test_fig10_speedups_accompany_reductions(fig10_rows, workload_runs):
    """Cycle savings must come with fewer memory loads, not from noise:
    every benchmark with >5% load reduction also reduces or holds its
    data-access cycles within noise."""
    for r in fig10_rows:
        if r["load_reduction_%"] > 5.0:
            assert r["data_access_reduction_%"] > -5.0, r["benchmark"]
