"""Three-way speculation-source comparison (ISSUE 8).

The paper uses a training-run alias profile (§3.2.1) with heuristic
rules as the profile-free fallback (§3.2.2).  ISSUE 8 adds a third,
static source: probabilistic alias analysis over branch-probability-
weighted dataflow (docs/speculation_sources.md).  This bench puts all
three side by side against the non-speculative base on every workload
and pins the acceptance shape: the static source recovers a nonzero
fraction of the profile's load-reduction win on at least half the
workloads — with *no* training run at all.
"""

import pytest

from repro.pipeline import format_table

from conftest import emit_table

pytestmark = pytest.mark.spec_static


@pytest.fixture(scope="module")
def source_rows(workload_runs):
    rows = []
    for runs in workload_runs.values():
        prof = runs.comparison("profile")
        heur = runs.comparison("heuristic")
        stat = runs.comparison("static")
        rows.append({
            "benchmark": runs.name,
            "profile_loadred_%": 100.0 * prof.load_reduction,
            "heuristic_loadred_%": 100.0 * heur.load_reduction,
            "static_loadred_%": 100.0 * stat.load_reduction,
            "profile_speedup_%": 100.0 * prof.speedup,
            "heuristic_speedup_%": 100.0 * heur.speedup,
            "static_speedup_%": 100.0 * stat.speedup,
            "static_misspec_%": 100.0 * stat.misspeculation_ratio,
        })
    return rows


def test_spec_source_compare_table(source_rows, benchmark):
    text = format_table(
        source_rows,
        title="Speculation sources: profile vs heuristic vs static",
    )
    emit_table("spec_source_compare", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_static_recovers_profile_win_on_half_the_workloads(source_rows):
    """Acceptance: on ≥ half the workloads where the profile wins at
    all, the static source recovers a nonzero fraction of that win."""
    winners = [r for r in source_rows if r["profile_loadred_%"] > 0.0]
    assert winners, "profile won nowhere — fixture broken"
    recovered = [r for r in winners if r["static_loadred_%"] > 0.0]
    assert len(recovered) * 2 >= len(winners), \
        [r["benchmark"] for r in winners if r not in recovered]


def test_static_misspeculation_stays_low(source_rows):
    """Wrong static guesses only cost recovery replays; the rate stays
    in the same band the paper reports for the heuristic rules."""
    for r in source_rows:
        assert r["static_misspec_%"] <= 10.0, r["benchmark"]


def test_static_needs_no_profile(workload_runs):
    """Structural check: the static runs were produced with no alias
    profile and no edge profile — no training run at all."""
    from repro.ssa import SpecMode

    for runs in workload_runs.values():
        config = runs.static.config
        assert config.mode is SpecMode.STATIC
        assert config.spec_source == "static"
        assert not config.needs_train_run
