"""Ablation: block list scheduling vs profile-guided superblock
scheduling (docs/scheduling.md).

Three scheduler settings × the eight SPEC-shaped workloads on the
standard 4-wide/2-port machine: no scheduling at all, per-block list
scheduling (the default) and superblock formation + trace scheduling +
hot-path layout.  The acceptance bar from the superblock subsystem's
design: the superblock geomean must be no worse than block scheduling,
no single workload may regress by more than 1%, and the taken-branch
count — the quantity the layout pass exists to shrink — must drop in
aggregate.
"""

from repro.pipeline import format_table
from repro.workloads import superblock_ablation

from conftest import emit_table


def test_ablation_superblock(benchmark):
    rows, summary = superblock_ablation()
    text = format_table(
        rows, title="Ablation: superblock scheduling (4-wide, 2 ports)")
    text += (f"\ngeomean cycles vs block: "
             f"superblock {100.0 * summary['geomean_sb_vs_block']:.2f}%  "
             f"(block vs unscheduled "
             f"{100.0 * summary['geomean_block_vs_none']:.2f}%)")
    emit_table("ablation_superblock", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # superblock wins on geomean and never loses more than 1% anywhere
    assert summary["geomean_sb_vs_block"] <= 1.0
    for row in rows:
        assert row["superblock_cycles"] <= row["block_cycles"] * 1.01, \
            row["benchmark"]
    # the mechanism: hot-path layout converts taken branches into
    # fallthroughs
    assert sum(r["taken_sb"] for r in rows) \
        < sum(r["taken_block"] for r in rows)
    # and scheduling at all is worth having (sanity on the baseline)
    assert summary["geomean_block_vs_none"] <= 1.0
