"""Input sensitivity — the paper's §1 motivation for *speculative*
treatment of profile data.

"If we find *p and *q are not aliases in the current profiling, it does
not guarantee that they are not aliases under different program inputs
(i.e. input sensitivity).  We can only assume speculatively that they
are not aliases…  This requires data speculation support."

This experiment trains gzip once (no collisions) and then measures it on
a family of ref inputs whose collision frequency on the promoted
hash-head slot rises from never to every 4th round.  The compiled binary
is the *same* in every run; only the input changes:

* output stays correct on every input (the ALAT absorbs the surprise);
* the mis-speculation ratio tracks the input's collision rate;
* the speculation keeps paying until mis-speculation dominates.
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_and_run, compile_program, format_table
from repro.profiling import run_module
from repro.target import run_program
from repro.workloads import get_workload
from repro.workloads.runner import _machine_kwargs

from conftest import emit_table


@pytest.fixture(scope="module")
def sensitivity_rows():
    gzip = get_workload("gzip")
    # train input: stores land in head[8..56) — never the promoted slot
    compiled = compile_program(gzip.source, SpecConfig.profile(),
                               train_inputs=gzip.train_inputs)
    rows = []
    # ref family: off=0 puts stores at head[(r*stride)%span]; the stride
    # controls how often that hits slot 0
    for stride, label in ((0, "never"), (2, "1/24 rounds"),
                          (4, "1/12 rounds"), (12, "1/4 rounds")):
        ref = [200, 64, 60, stride, 8 if stride == 0 else 0, 48, 0]
        stats, output = run_program(compiled.program, inputs=ref,
                                    **_machine_kwargs())
        expected = run_module(compiled.original, inputs=ref)
        assert output == expected  # correctness under every input
        rows.append({
            "ref_input_collisions": label,
            "checks": stats.check_loads,
            "check_misses": stats.check_misses,
            "misspec_%": 100.0 * stats.misspeculation_ratio,
        })
    return rows


def test_input_sensitivity_table(sensitivity_rows, benchmark):
    text = format_table(
        sensitivity_rows,
        title="Input sensitivity (gzip): one binary, profile from a "
              "collision-free train input, measured on varying refs",
    )
    emit_table("input_sensitivity", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(sensitivity_rows) == 4


def test_misspeculation_tracks_input(sensitivity_rows):
    ratios = [r["misspec_%"] for r in sensitivity_rows]
    assert ratios[0] == 0.0          # collision-free ref: no misses
    assert ratios == sorted(ratios)  # monotone in collision frequency
    assert ratios[-1] > ratios[0]


def test_checks_constant_across_inputs(sensitivity_rows):
    """The speculation decision was made at compile time: the number of
    executed checks is input-independent (same trip counts)."""
    checks = {r["checks"] for r in sensitivity_rows}
    assert len(checks) == 1
