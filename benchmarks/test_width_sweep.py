"""Superscalar width sweep (ROADMAP open item).

The paper evaluates on an 4-issue Itanium; this sweep ablates the
machine's ``issue_width`` ∈ {1, 2, 4, 8} (with memory ports scaled to
match: 1, 1, 2, 4) across every SPEC-shaped workload to show *where*
speculative PRE's win comes from.  On a 1-wide machine removing a load
mostly saves the issue slot; as the machine widens, the remaining loads'
latencies dominate the critical path and hiding them behind ``ld.a``
pays progressively more — the speculation win grows with width and
saturates once the machine is wide enough (8-wide ≈ 4-wide for these
kernels, so the win may wobble within noise there).

Each workload is compiled **once per configuration** and the machine
programs are then re-simulated per width — the sweep varies hardware,
not code, so recompiling would only add noise (and wall time).
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_program, format_table
from repro.target import run_program
from repro.workloads import all_workloads, machine_kwargs

from conftest import emit_table

#: issue width → memory ports kept in proportion (a 1- or 2-wide
#: machine has one port; the paper's 4-wide machine has two)
WIDTH_PORTS = {1: 1, 2: 1, 4: 2, 8: 4}


@pytest.fixture(scope="module")
def sweep():
    """cycles[workload][config][width] for base vs. profile-speculative
    builds, simulated on the same machine family at every width."""
    data = {}
    for w in all_workloads():
        base = compile_program(w.source, SpecConfig.base(),
                               train_inputs=w.train_inputs)
        spec = compile_program(w.source, SpecConfig.profile(),
                               train_inputs=w.train_inputs)
        per_width = {}
        for width, ports in WIDTH_PORTS.items():
            base_stats, base_out = run_program(
                base.program, inputs=w.ref_inputs,
                **machine_kwargs(issue_width=width, mem_ports=ports))
            spec_stats, spec_out = run_program(
                spec.program, inputs=w.ref_inputs,
                **machine_kwargs(issue_width=width, mem_ports=ports))
            assert spec_out == base_out, \
                f"{w.name}: outputs diverged at width {width}"
            per_width[width] = (base_stats.cycles, spec_stats.cycles)
        data[w.name] = per_width
    return data


def _win(base_cycles: int, spec_cycles: int) -> float:
    return 1.0 - spec_cycles / base_cycles


def test_width_sweep_table(sweep, benchmark):
    rows = []
    for name, per_width in sweep.items():
        row = {"benchmark": name}
        for width, (base_cycles, spec_cycles) in per_width.items():
            row[f"base_cyc_w{width}"] = base_cycles
            row[f"win_%_w{width}"] = \
                100.0 * _win(base_cycles, spec_cycles)
        rows.append(row)
    text = format_table(rows,
                        title="Superscalar width sweep (profile vs base, "
                              "mem_ports 1/1/2/4)")
    emit_table("width_sweep", text)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_wider_machines_are_never_slower(sweep):
    """Sanity of the machine model: adding issue slots and memory ports
    must not add cycles, for either build."""
    for name, per_width in sweep.items():
        widths = sorted(per_width)
        for prev, cur in zip(widths, widths[1:]):
            assert per_width[cur][0] <= per_width[prev][0], \
                f"{name}: base got slower going {prev}->{cur}-wide"
            assert per_width[cur][1] <= per_width[prev][1], \
                f"{name}: spec got slower going {prev}->{cur}-wide"


def test_speculation_win_grows_with_width(sweep):
    """The speculation win is monotonically non-decreasing from 1- to
    2- to 4-wide on every workload: latency hiding pays more the wider
    the machine (at 8-wide the kernels saturate, so that point is
    reported but not constrained)."""
    for name, per_width in sweep.items():
        wins = [_win(*per_width[width]) for width in (1, 2, 4)]
        assert wins == sorted(wins), \
            f"{name}: speculation win not monotone in width: {wins}"
