"""The wall-clock perf benchmark (docs/performance.md).

Times the three hot execution paths this repo's figures bottom out in —
simulation, compilation, and the fault-injection campaign — and writes
``BENCH_perf.json`` at the repo root: the perf trajectory CI uploads as
an artifact, one before/after pair per phase measured **in the same
run** so the numbers are comparable:

* **simulate** — every workload through all three machine engines: the
  frozen ``classic`` tree-walking dispatch (the pre-PR baseline), the
  ``predecode`` engine that classifies operands at translation time,
  and the ``trace`` engine — the hot-trace JIT that compiles hot block
  sequences into fused Python closures (docs/performance.md).  Outputs
  and every architectural counter must agree bit-for-bit; the
  simulation-heavy set must show a ≥1.8x predecode-over-classic
  geomean, and the trace engine must add a ≥1.5x geomean over
  predecode (≥3x over classic).
* **compile** — cold pipeline runs versus content-addressed
  :class:`~repro.pipeline.CompileCache` hits.
* **campaign** — the seeded injection matrix sequentially (``jobs=1``)
  and over a 4-worker process pool; the ≥3x scaling bar only applies
  on machines that actually have 4 CPUs, and the report says
  ``parallel_taken: false`` when the break-even fallback kept the
  ``jobs=4`` run sequential (instead of recording a misleading
  sub-1.0 "speedup").

All timings are best-of-N (``REPRO_BENCH_REPS``, default 3) to shed
scheduler noise; throughput is reported as dynamic instructions per
second, the unit the CI regression gate compares against the committed
baseline (``benchmarks/BENCH_perf_baseline.json`` — the gate is
skipped until one is committed).
"""

import json
import math
import os
import time

import pytest

from repro.core import SpecConfig
from repro.hazards import run_campaign
from repro.pipeline import CompileCache, compile_program
from repro.target import run_program
from repro.workloads import all_workloads
from repro.workloads.runner import _machine_kwargs

pytestmark = pytest.mark.bench_smoke

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_perf_baseline.json")

REPS = max(1, int(os.environ.get("REPRO_BENCH_REPS", "3")))

#: workloads whose wall clock is dominated by the simulation loop (the
#: rest spend comparable time in the compile pipeline / oracle)
SIM_HEAVY = ("gzip", "mcf", "twolf", "vpr")

#: the injection matrix the campaign phase times: large enough that the
#: per-worker compile cost amortizes over simulations
CAMPAIGN_SCENARIOS = ("poison", "storm")
CAMPAIGN_SEEDS = tuple(range(6))
CAMPAIGN_JOBS = 4

#: accumulated across the phase tests below (pytest runs them in file
#: order); the final test assembles and writes BENCH_perf.json
REPORT = {"workloads": {}, "campaign": None}


def _best_of(fn, reps=REPS):
    """Best-of-N wall clock: returns (seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_simulate_engine_speedups():
    """Phase 1: classic vs predecode vs trace dispatch, all eight
    workloads.

    The engines must be bit-identical (outputs, architectural stats,
    per-function stats); the pre-decode must buy >=1.8x geomean over
    classic on the simulation-heavy set (no sim-heavy workload below
    1.4x), and the trace JIT must add >=1.5x geomean over predecode
    (>=3x over classic) on the same set — the PR gate."""
    for w in all_workloads():
        compiled = compile_program(w.source, SpecConfig.profile(),
                                   train_inputs=w.train_inputs)
        kwargs = _machine_kwargs()
        timings = {}
        for engine in ("classic", "predecode", "trace"):
            secs, (stats, output) = _best_of(
                lambda e=engine: run_program(compiled.program,
                                             inputs=w.ref_inputs,
                                             engine=e, **kwargs))
            timings[engine] = (secs, stats, output)
        classic_s, cstats, cout = timings["classic"]
        predecode_s, pstats, pout = timings["predecode"]
        trace_s, tstats, tout = timings["trace"]
        assert pout == cout == tout, f"{w.name}: engine outputs diverge"
        assert pstats.to_dict() == cstats.to_dict(), \
            f"{w.name}: engine stats diverge"
        assert tstats.arch_dict() == cstats.arch_dict(), \
            f"{w.name}: trace engine architectural stats diverge"
        assert ({k: vars(v) for k, v in pstats.fn_stats.items()}
                == {k: vars(v) for k, v in cstats.fn_stats.items()}
                == {k: vars(v) for k, v in tstats.fn_stats.items()}), \
            f"{w.name}: per-function stats diverge"
        assert tstats.traces_compiled > 0 and tstats.trace_hits > 0, \
            f"{w.name}: trace engine never left the interpreter"
        REPORT["workloads"][w.name] = {"simulate": {
            "classic_s": classic_s,
            "predecode_s": predecode_s,
            "trace_s": trace_s,
            "speedup": classic_s / predecode_s,
            "trace_speedup_vs_predecode": predecode_s / trace_s,
            "trace_speedup_vs_classic": classic_s / trace_s,
            "dyn_instructions": pstats.instructions,
            "classic_dyn_instr_per_s": pstats.instructions / classic_s,
            "predecode_dyn_instr_per_s":
                pstats.instructions / predecode_s,
            "trace_dyn_instr_per_s": pstats.instructions / trace_s,
            "trace_cache": dict(
                tstats.engine_dict(),
                coverage=(tstats.trace_dyn_instr / tstats.instructions
                          if tstats.instructions else 0.0)),
        }}

    speedups = {name: entry["simulate"]["speedup"]
                for name, entry in REPORT["workloads"].items()}
    trace_vs_pre = {name: entry["simulate"]["trace_speedup_vs_predecode"]
                    for name, entry in REPORT["workloads"].items()}
    trace_vs_cls = {name: entry["simulate"]["trace_speedup_vs_classic"]
                    for name, entry in REPORT["workloads"].items()}
    heavy = [speedups[name] for name in SIM_HEAVY]
    heavy_tp = [trace_vs_pre[name] for name in SIM_HEAVY]
    heavy_tc = [trace_vs_cls[name] for name in SIM_HEAVY]
    REPORT["simulate_summary"] = {
        "sim_heavy": list(SIM_HEAVY),
        "sim_heavy_geomean_speedup": _geomean(heavy),
        "all_geomean_speedup": _geomean(list(speedups.values())),
        "trace_sim_heavy_geomean_vs_predecode": _geomean(heavy_tp),
        "trace_sim_heavy_geomean_vs_classic": _geomean(heavy_tc),
        "trace_all_geomean_vs_predecode":
            _geomean(list(trace_vs_pre.values())),
    }
    for name in SIM_HEAVY:
        assert speedups[name] >= 1.4, \
            f"{name}: predecode only {speedups[name]:.2f}x over classic"
    assert _geomean(heavy) >= 1.8, \
        f"sim-heavy geomean {_geomean(heavy):.2f}x < 1.8x"
    assert _geomean(heavy_tp) >= 1.5, \
        f"trace sim-heavy geomean {_geomean(heavy_tp):.2f}x < 1.5x " \
        f"over predecode"
    assert _geomean(heavy_tc) >= 3.0, \
        f"trace sim-heavy geomean {_geomean(heavy_tc):.2f}x < 3x " \
        f"over classic"


def test_compile_cache_speedup():
    """Phase 2: cold pipeline runs vs content-addressed cache hits."""
    for w in all_workloads():
        cold_s, _ = _best_of(
            lambda: compile_program(w.source, SpecConfig.profile(),
                                    train_inputs=w.train_inputs,
                                    cache=False))
        cache = CompileCache()
        compile_program(w.source, SpecConfig.profile(),
                        train_inputs=w.train_inputs, cache=cache)
        cached_s, _ = _best_of(
            lambda: compile_program(w.source, SpecConfig.profile(),
                                    train_inputs=w.train_inputs,
                                    cache=cache))
        assert cache.hits >= REPS
        REPORT["workloads"][w.name]["compile"] = {
            "cold_s": cold_s,
            "cached_s": cached_s,
            "speedup": cold_s / max(cached_s, 1e-9),
        }
        # a hit is a dict lookup; anything under 10x means it recompiled
        assert cold_s / max(cached_s, 1e-9) >= 10.0, w.name


def test_campaign_parallel_scaling():
    """Phase 3: the injection matrix sequentially vs a 4-worker pool.

    Bit-identical reports at any job count is pinned by the faultinject
    tier; here we time it.  The >=3x bar only binds where 4 CPUs exist
    (the 1-CPU CI shard still records both numbers)."""
    names = [w.name for w in all_workloads()]
    kwargs = dict(workload_names=names, scenarios=CAMPAIGN_SCENARIOS,
                  seeds=CAMPAIGN_SEEDS)
    t0 = time.perf_counter()
    seq = run_campaign(jobs=1, **kwargs)
    jobs1_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_campaign(jobs=CAMPAIGN_JOBS, **kwargs)
    jobs4_s = time.perf_counter() - t0
    assert seq.ok, seq.summary()
    assert [vars(r) for r in par.runs] == [vars(r) for r in seq.runs]
    REPORT["campaign"] = {
        "runs": len(seq.runs),
        "scenarios": list(CAMPAIGN_SCENARIOS),
        "seeds": list(CAMPAIGN_SEEDS),
        "jobs1_s": jobs1_s,
        "jobs4_s": jobs4_s,
        "jobs": CAMPAIGN_JOBS,
        # On boxes below the pool's break-even (cpus/runs), run_campaign
        # falls back to the sequential path: report that explicitly
        # instead of a misleading sub-1.0 "speedup" of serial vs serial.
        "parallel_taken": par.parallel_taken,
        "speedup": jobs1_s / jobs4_s if par.parallel_taken else None,
    }
    if par.parallel_taken and (os.cpu_count() or 1) >= CAMPAIGN_JOBS:
        assert jobs1_s / jobs4_s >= 3.0, \
            f"campaign --jobs {CAMPAIGN_JOBS} only " \
            f"{jobs1_s / jobs4_s:.2f}x over sequential"


def test_write_bench_perf_json():
    """Assemble BENCH_perf.json and apply the CI regression gate:
    dynamic-instructions/sec must not drop >25% below the committed
    baseline (skipped until ``benchmarks/BENCH_perf_baseline.json``
    exists)."""
    assert len(REPORT["workloads"]) == len(all_workloads())
    assert all("simulate" in e and "compile" in e
               for e in REPORT["workloads"].values())
    assert REPORT["campaign"] is not None
    throughput = _geomean(
        [e["simulate"]["predecode_dyn_instr_per_s"]
         for e in REPORT["workloads"].values()])
    trace_throughput = _geomean(
        [e["simulate"]["trace_dyn_instr_per_s"]
         for e in REPORT["workloads"].values()])
    # schema 2 (docs/performance.md): adds the trace engine — per
    # workload trace_s / trace_speedup_vs_{predecode,classic} /
    # trace_dyn_instr_per_s / trace_cache counters, the trace geomeans
    # in simulate_summary, trace_geomean_dyn_instr_per_s at top level —
    # and replaces the campaign speedup with null + parallel_taken:
    # false when the break-even fallback kept jobs=4 sequential.
    doc = {
        "schema": 2,
        "best_of": REPS,
        "cpu_count": os.cpu_count(),
        "geomean_dyn_instr_per_s": throughput,
        "trace_geomean_dyn_instr_per_s": trace_throughput,
        "simulate_summary": REPORT["simulate_summary"],
        "campaign": REPORT["campaign"],
        "workloads": REPORT["workloads"],
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    summary = doc["simulate_summary"]
    campaign = REPORT["campaign"]
    campaign_note = (f"{campaign['speedup']:.2f}x"
                     if campaign["parallel_taken"]
                     else "sequential fallback")
    print(f"\nBENCH_perf.json: sim-heavy geomean "
          f"{summary['sim_heavy_geomean_speedup']:.2f}x predecode, "
          f"{summary['trace_sim_heavy_geomean_vs_predecode']:.2f}x "
          f"trace-over-predecode "
          f"({summary['trace_sim_heavy_geomean_vs_classic']:.2f}x "
          f"over classic), campaign jobs={campaign['jobs']} "
          f"{campaign_note}, {throughput:,.0f} predecode / "
          f"{trace_throughput:,.0f} trace dyn instr/s")

    if not os.path.exists(BASELINE_PATH):
        pytest.skip("no committed perf baseline yet — gate not armed")
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)
    floor = 0.75 * baseline["geomean_dyn_instr_per_s"]
    assert throughput >= floor, \
        f"dyn-instr/s regressed >25%: {throughput:,.0f} < " \
        f"75% of baseline {baseline['geomean_dyn_instr_per_s']:,.0f}"
    trace_floor = 0.75 * baseline.get("trace_geomean_dyn_instr_per_s", 0)
    assert trace_throughput >= trace_floor, \
        f"trace dyn-instr/s regressed >25%: {trace_throughput:,.0f} < " \
        f"75% of baseline " \
        f"{baseline['trace_geomean_dyn_instr_per_s']:,.0f}"
