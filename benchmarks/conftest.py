"""Shared fixtures for the figure-reproduction benchmarks.

Expensive pipeline runs are computed once per session and shared; every
bench both *prints* its table (visible with ``pytest -s`` / on failure)
and writes it to ``results/<figure>.txt`` so the regenerated rows are
always inspectable.
"""

import os
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.core import SpecConfig
from repro.pipeline import Comparison, format_table
from repro.target import ALAT
from repro.workloads import all_workloads, get_workload, run_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def emit_table(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print()
    print(text)


@dataclass
class WorkloadRuns:
    """base / profile / heuristic / static / aggressive runs for one
    workload."""

    name: str
    base: object
    profile: object
    heuristic: object
    static: object
    aggressive: object

    def comparison(self, which: str = "profile") -> Comparison:
        return Comparison(self.name, self.base, getattr(self, which))


@pytest.fixture(scope="session")
def workload_runs() -> Dict[str, WorkloadRuns]:
    """All five configurations for all eight workloads (the shared data
    every figure draws from)."""
    runs: Dict[str, WorkloadRuns] = {}
    for w in all_workloads():
        runs[w.name] = WorkloadRuns(
            name=w.name,
            base=run_workload(w, SpecConfig.base()),
            profile=run_workload(w, SpecConfig.profile()),
            heuristic=run_workload(w, SpecConfig.heuristic()),
            static=run_workload(w, SpecConfig.static()),
            # The §5.1 "manually tuned" variant: checks are kept for
            # functional correctness but cost nothing and never suffer
            # ALAT capacity pressure — equivalent to code with the
            # checks deleted, while staying measurable on any input.
            aggressive=run_workload(
                w, SpecConfig.aggressive(),
                machine_overrides=dict(
                    check_issue_free=True,
                    alat=ALAT(entries=4096, ways=4),
                ),
            ),
        )
    return runs
