"""Defining and measuring your own workload.

Shows the downstream-user path end to end: write a mini-C kernel with an
input-parameterized aliasing pattern, register it as a workload with
train/ref inputs, and measure it under every speculation configuration —
with per-phase IR dumps for inspection.

Run:  python examples/custom_workload.py
"""

from repro.core import SpecConfig
from repro.pipeline import DumpSink, compile_program, format_table
from repro.workloads import Workload, run_workload

# A histogram-equalization-ish kernel: `lut` lookups are repeated across
# `hist` updates.  Statically the two may alias (the guarded call passes
# the same array); dynamically they never do.
SOURCE = """
int seed;

int rnd(int bound) {
  seed = (seed * 2731 + 5) % 65536;
  return seed % bound;
}

int equalize(int *pixels, int *lut, int *hist, int n, int levels) {
  int i; int p; int out;
  out = 0;
  for (i = 0; i < n; i = i + 1) {
    p = pixels[i] % levels;
    hist[p] = hist[p] + 1;
    out = out + lut[p];
    hist[p] = hist[p] % 4093;
    out = (out + lut[p] / 2) % 100003;
  }
  return out;
}

void main() {
  int n; int levels; int guard; int i; int out;
  int *pixels; int *lut; int *hist;
  n = input(); levels = input(); guard = input();
  seed = 77;
  pixels = alloc(n); lut = alloc(levels); hist = alloc(levels);
  for (i = 0; i < n; i = i + 1) { pixels[i] = rnd(1000); }
  for (i = 0; i < levels; i = i + 1) { lut[i] = rnd(255); hist[i] = 0; }
  if (guard < 0) { out = equalize(hist, hist, hist, n, levels); }
  out = equalize(pixels, lut, hist, n, levels);
  for (i = 0; i < levels; i = i + 1) { out = (out + hist[i]) % 100003; }
  print(out);
}
"""

WORKLOAD = Workload(
    name="histeq",
    spec_name="(custom)",
    description="histogram equalization: lut[p] reloads across hist[p] "
                "stores that never actually collide",
    source=SOURCE,
    train_inputs=[64, 16, 0],
    ref_inputs=[400, 32, 0],
    expectation="lut reloads become checks; zero mis-speculation",
)


def main() -> None:
    print("=" * 72)
    print("Custom workload: histogram equalization")
    print("=" * 72)

    rows = []
    base = run_workload(WORKLOAD, SpecConfig.base())
    for config, name in [
        (SpecConfig.base(), "base"),
        (SpecConfig.profile(), "profile"),
        (SpecConfig.heuristic(), "heuristic"),
    ]:
        result = run_workload(WORKLOAD, config)
        rows.append({
            "config": name,
            "memory_loads": result.stats.memory_loads,
            "loadred_%": 100.0 * (1 - result.stats.memory_loads
                                  / base.stats.memory_loads),
            "checks": result.stats.check_loads,
            "misspec_%": 100.0 * result.stats.misspeculation_ratio,
            "cycles": result.stats.cycles,
        })
    print(format_table(rows))

    print("\n--- the speculative kernel (optimized IR) ---")
    sink = DumpSink()
    compile_program(SOURCE, SpecConfig.profile(),
                    train_inputs=WORKLOAD.train_inputs, dumps=sink)
    text = sink.get("optimized")
    in_fn = False
    for line in text.splitlines():
        if line.startswith("int equalize"):
            in_fn = True
        if in_fn:
            print(line)
            if line == "}":
                break


if __name__ == "__main__":
    main()
