"""mcf-style pointer chasing: why load reduction ≠ speedup.

The paper's Figure 10 discussion: mcf loses 6% of its loads to
speculative promotion but only gains 2% time, "because the reduced loads
are often cache-hit operations, thus having a smaller impact on
performance for programs suffering from frequent data cache misses".

This example reproduces the effect with the mcf workload and shows the
cache statistics behind it.

Run:  python examples/pointer_chasing.py
"""

from repro.core import SpecConfig
from repro.workloads import get_workload, run_workload


def main() -> None:
    workload = get_workload("mcf")
    print("=" * 72)
    print("mcf: load reduction without matching speedup")
    print("=" * 72)
    print(workload.description)
    print()

    base = run_workload(workload, SpecConfig.base())
    spec = run_workload(workload, SpecConfig.profile())

    load_red = 100.0 * (1 - spec.stats.memory_loads
                        / base.stats.memory_loads)
    speedup = 100.0 * (1 - spec.stats.cycles / base.stats.cycles)

    print(f"memory loads     : {base.stats.memory_loads} -> "
          f"{spec.stats.memory_loads}  ({load_red:.1f}% reduction)")
    print(f"cycles           : {base.stats.cycles} -> "
          f"{spec.stats.cycles}  ({speedup:.1f}% speedup)")
    print()

    # The promoted (removed) loads are the *reloads* — they hit L1 by
    # construction (the first load just touched the line).  The expensive
    # scattered potential[] misses are first uses and must stay.
    for name, result in (("base", base), ("spec", spec)):
        machine_cache = result.stats
        print(f"{name}: data-access stall cycles = "
              f"{machine_cache.data_access_cycles} "
              f"({100.0 * machine_cache.data_access_cycles / machine_cache.cycles:.1f}% of runtime)")
    print()
    print("The removed loads were cheap L1 hits; the cache-missing first")
    print("loads of potential[] remain, so the speedup trails the load")
    print("reduction — the paper's mcf observation.")


if __name__ == "__main__":
    main()
