"""§5.1 case study: equake's smvp procedure.

Reproduces the paper's three headline numbers for the time-critical
sparse matrix-vector kernel:

* how many load operations become check instructions,
* the speedup of the speculative build over the O3 base,
* the headroom of a "manually tuned" build (checks deleted — valid here
  because the aliasing never materializes).

Run:  python examples/smvp_case_study.py
"""

from repro.core import SpecConfig
from repro.target import ALAT
from repro.workloads import get_workload, run_workload


def main() -> None:
    workload = get_workload("equake")
    print("=" * 72)
    print("§5.1 smvp case study (equake workload)")
    print("=" * 72)
    print(workload.description)
    print()

    base = run_workload(workload, SpecConfig.base())
    spec = run_workload(workload, SpecConfig.profile())
    manual = run_workload(
        workload, SpecConfig.aggressive(),
        machine_overrides=dict(check_issue_free=True,
                               alat=ALAT(entries=4096, ways=4)),
    )

    checks_over_loads = 100.0 * spec.stats.check_loads / max(
        1, spec.stats.loads_retired)
    speedup = 100.0 * (1 - spec.stats.cycles / base.stats.cycles)
    manual_speedup = 100.0 * (1 - manual.stats.cycles / base.stats.cycles)

    print(f"{'metric':38s}{'measured':>10s}{'paper':>10s}")
    print(f"{'loads replaced by checks (%)':38s}"
          f"{checks_over_loads:>10.1f}{39.8:>10.1f}")
    print(f"{'speculative speedup over base (%)':38s}"
          f"{speedup:>10.1f}{6.0:>10.1f}")
    print(f"{'manually tuned upper bound (%)':38s}"
          f"{manual_speedup:>10.1f}{14.0:>10.1f}")
    print()
    print("Like the paper's prototype, the checked build realizes only")
    print("part of the manually tuned headroom: check instructions and")
    print("their address recomputation still occupy issue slots (the")
    print("paper blames ORC's scheduling of ldfd.c for the same gap).")
    print()
    print(f"base    : {base.stats.memory_loads} memory loads, "
          f"{base.stats.cycles} cycles")
    print(f"spec    : {spec.stats.memory_loads} memory loads, "
          f"{spec.stats.cycles} cycles, "
          f"{spec.stats.check_loads} checks "
          f"({spec.stats.check_misses} missed)")
    print(f"manual  : {manual.stats.memory_loads} memory loads, "
          f"{manual.stats.cycles} cycles")


if __name__ == "__main__":
    main()
