"""Strength reduction and linear-function test replacement.

The paper's §4 framework covers not only PRE and register promotion but
also strength reduction and LFTR (after Kennedy et al. [20]); it notes
that SR's *injuring definitions* and *repairs* are the non-speculative
twins of its speculative weak updates and check statements.

This example shows the classic transformation: `i * 12` in a counted
loop becomes a temporary advanced by 12 per iteration, the loop test is
rewritten against the scaled bound, and dead-code elimination retires
the original induction variable's update.

Run:  python examples/strength_reduction.py
"""

from repro.core import SpecConfig
from repro.ir import format_function
from repro.pipeline import compile_program

SOURCE = """
void main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 8; i = i + 1) {
    s = s + i * 12;
  }
  print(s);
}
"""


def main() -> None:
    print("=" * 72)
    print("Strength reduction + LFTR (paper §4 / Kennedy et al. [20])")
    print("=" * 72)
    print("source loop:  for (i = 0; i < 8; i++)  s += i * 12;")
    print()
    for lftr, label in ((False, "strength reduction only"),
                        (True, "with linear-function test replacement")):
        compiled = compile_program(
            SOURCE, SpecConfig.base().but(lftr=lftr))
        print(f"--- {label} ---")
        print(format_function(compiled.optimized.functions["main"]))
        print()
    print("With LFTR the loop counts by `pre += 12` and compares against")
    print("96 (= 8 * 12); the multiply and the original i-increment are")
    print("gone — the injury repairs keep the temporary in sync exactly")
    print("where the paper's speculative framework would emit checks.")


if __name__ == "__main__":
    main()
