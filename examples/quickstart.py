"""Quickstart: the paper's Figure 2 transformation, end to end.

Compiles a tiny function in which a store through ``*q`` sits between two
loads of ``*p``.  Statically the two pointers may alias (a never-executed
call passes the same array for both), but the training run shows they
never do — so speculative SSAPRE removes the second load, emitting the
paper's ld.a / ld.c pair, and the ALAT-backed simulator confirms zero
mis-speculations.

Run:  python examples/quickstart.py
"""

from repro.core import SpecConfig
from repro.ir import format_function
from repro.pipeline import compile_and_run, compile_program

SOURCE = """
void f(int *p, int *q) {
  int x;
  x = *p;        // first load of *p
  *q = 9;        // may-alias store (never aliases at runtime)
  x = x + *p;    // second load of *p: speculatively redundant
  print(x);
}

void main() {
  int a[8]; int b[8]; int c;
  c = input();
  a[0] = 5;
  if (c) { f(a, a); }   // makes p/q static may-aliases; never executed
  f(a, b);
}
"""


def main() -> None:
    print("=" * 72)
    print("Paper Figure 2: redundancy elimination using data speculation")
    print("=" * 72)

    for config, label in [
        (SpecConfig.base(), "O3 base (no data speculation)"),
        (SpecConfig.profile(), "speculative (alias profile)"),
    ]:
        compiled = compile_program(SOURCE, config, train_inputs=[0])
        print(f"\n--- {label}: optimized IR of f ---")
        print(format_function(compiled.optimized.functions["f"]))

    print("\n--- simulated on the IA-64-flavoured machine ---")
    for config, label in [
        (SpecConfig.base(), "base"),
        (SpecConfig.profile(), "speculative"),
    ]:
        result = compile_and_run(SOURCE, config,
                                 train_inputs=[0], ref_inputs=[0])
        s = result.stats
        print(f"{label:12s} output={result.output}  "
              f"loads={s.memory_loads} (plain={s.plain_loads}, "
              f"ld.a={s.advanced_loads}, ld.c={s.check_loads} "
              f"with {s.check_misses} misses)  cycles={s.cycles}")

    print("\nThe speculative build replaces the reload of *p with a check"
          "\nload; since *q never aliased *p at runtime, every check hits"
          "\nand the load disappears from the memory pipeline.")


if __name__ == "__main__":
    main()
