"""§3.2.2 / §5.2: heuristic rules as a profile-free alternative.

The paper's speculative SSA form can be flagged either from an alias
profile or from three syntax-tree heuristic rules.  This example runs
every workload under both and prints the comparison the paper summarizes
as "the performance of the heuristic version is comparable to that of
the profile-based version".

Run:  python examples/heuristics_vs_profile.py
"""

from repro.core import SpecConfig
from repro.pipeline import format_table
from repro.workloads import all_workloads, run_workload


def main() -> None:
    print("=" * 72)
    print("Speculation flags: three syntax heuristics vs alias profile")
    print("=" * 72)
    print("""
rule 1: identical address syntax trees are assumed to see the same value
rule 2: direct reads of one variable are assumed to see the same value
rule 3: call side effects are always binding (no speculation across calls)
""")
    rows = []
    for workload in all_workloads():
        base = run_workload(workload, SpecConfig.base())
        profile = run_workload(workload, SpecConfig.profile())
        heuristic = run_workload(workload, SpecConfig.heuristic())

        def reduction(run):
            return 100.0 * (1 - run.stats.memory_loads
                            / base.stats.memory_loads)

        rows.append({
            "benchmark": workload.name,
            "profile_loadred_%": reduction(profile),
            "heuristic_loadred_%": reduction(heuristic),
            "heuristic_misspec_%":
                100.0 * heuristic.stats.misspeculation_ratio,
        })
    print(format_table(rows))
    print()
    print("The heuristics recover most of the profile's load reduction")
    print("without any training run, at a small mis-speculation cost —")
    print("the ALAT checks keep every run correct either way.")


if __name__ == "__main__":
    main()
